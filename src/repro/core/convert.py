"""MPI-conversion interfaces (paper Code 3).

These helpers let applications swap two-sided MPI hotspots for UNR
notifiable PUTs with minimal surgery: they perform the one-time BLK
exchange (the implicit remote-address handshake) during initialization
and return an :class:`~repro.core.plan.RmaPlan` that replays the
transfers each iteration.

All converters are generators (they communicate); drive them with
``yield from`` during the setup phase — mirroring how the paper's
``MPI_Isend_Convert`` consumes an ``mpi_request`` whose completion
represents the address-information exchange.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from .api import UnrEndpoint
from .errors import UnrUsageError
from .memory import Blk, MemoryRegion
from .plan import RmaPlan
from .signal import Signal

__all__ = [
    "isend_convert",
    "irecv_convert",
    "sendrecv_convert",
    "alltoallv_convert",
]


def isend_convert(
    ep: UnrEndpoint,
    mr: MemoryRegion,
    offset: int,
    nbytes: int,
    dst: int,
    tag: int,
    send_finish_sig: Optional[Signal] = None,
) -> Generator[Any, Any, RmaPlan]:
    """Sender half of an Isend/Irecv pair → returns a one-PUT plan.

    The matching receiver must run :func:`irecv_convert` with the same
    ``tag``.  ``send_finish_sig`` (if given) triggers when the source
    buffer is reusable."""
    send_blk = ep.blk_init(mr, offset, nbytes, signal=send_finish_sig)
    rmt_blk = yield from ep.recv_ctl(dst, tag=("cvt", tag))
    if rmt_blk.size != nbytes:
        raise UnrUsageError(
            f"isend_convert: receiver posted {rmt_blk.size}B for a "
            f"{nbytes}B send (tag={tag})"
        )
    plan = ep.plan()
    plan.record_put(send_blk, rmt_blk)
    return plan


def irecv_convert(
    ep: UnrEndpoint,
    mr: MemoryRegion,
    offset: int,
    nbytes: int,
    src: int,
    tag: int,
    recv_finish_sig: Optional[Signal] = None,
) -> Generator[Any, Any, Blk]:
    """Receiver half: publishes the receive block to the sender.

    Completion of each iteration's receive is observed through
    ``recv_finish_sig`` (bound to the block)."""
    recv_blk = ep.blk_init(mr, offset, nbytes, signal=recv_finish_sig)
    yield from ep.send_ctl(src, recv_blk, tag=("cvt", tag))
    return recv_blk


def sendrecv_convert(
    ep: UnrEndpoint,
    send_mr: MemoryRegion,
    send_offset: int,
    send_nbytes: int,
    dst: int,
    recv_mr: MemoryRegion,
    recv_offset: int,
    recv_nbytes: int,
    src: int,
    tag: int,
    send_finish_sig: Optional[Signal] = None,
    recv_finish_sig: Optional[Signal] = None,
) -> Generator[Any, Any, RmaPlan]:
    """Bidirectional neighbour exchange (paper's ``MPI_Sendrecv_Convert``).

    Used by the PDD tridiagonal solver's top/bottom neighbour traffic."""
    recv_blk = ep.blk_init(recv_mr, recv_offset, recv_nbytes, signal=recv_finish_sig)
    yield from ep.send_ctl(src, recv_blk, tag=("cvt", tag))
    send_blk = ep.blk_init(send_mr, send_offset, send_nbytes, signal=send_finish_sig)
    rmt_blk = yield from ep.recv_ctl(dst, tag=("cvt", tag))
    plan = ep.plan()
    plan.record_put(send_blk, rmt_blk)
    return plan


def alltoallv_convert(
    ep: UnrEndpoint,
    ranks: Sequence[int],
    send_mr: MemoryRegion,
    send_counts: Sequence[int],
    send_displs: Sequence[int],
    recv_mr: MemoryRegion,
    recv_counts: Sequence[int],
    recv_displs: Sequence[int],
    send_finish_sig: Optional[Signal] = None,
    recv_finish_sig: Optional[Signal] = None,
) -> Generator[Any, Any, RmaPlan]:
    """All-to-all(v) over the ranks of a (sub-)communicator → PUT plan.

    ``ranks`` lists the communicator's global ranks (this endpoint's
    rank included); counts/displacements are in **bytes** relative to
    the registered regions.  Bind ``recv_finish_sig`` with
    ``num_event = len(ranks)`` to observe the whole exchange, or a
    smaller ``num_event`` plus per-slab signals for pipelining."""
    ranks = list(ranks)
    if ep.rank not in ranks:
        raise UnrUsageError("alltoallv_convert: caller not in the rank list")
    n = len(ranks)
    if not (len(send_counts) == len(send_displs) == n):
        raise UnrUsageError("send counts/displs length mismatch")
    if not (len(recv_counts) == len(recv_displs) == n):
        raise UnrUsageError("recv counts/displs length mismatch")
    me = ranks.index(ep.rank)

    # Publish my receive slots to every peer (their slot in my buffer).
    for j, peer in enumerate(ranks):
        if recv_counts[j] == 0:
            continue
        blk = ep.blk_init(recv_mr, recv_displs[j], recv_counts[j], signal=recv_finish_sig)
        yield from ep.send_ctl(peer, blk, tag=("a2av", me))

    # Collect every peer's slot for me and record the PUTs.
    plan = ep.plan()
    remote_blks: List = [None] * n
    for j, peer in enumerate(ranks):
        if send_counts[j] == 0:
            continue
        rmt = yield from ep.recv_ctl(peer, tag=("a2av", j))
        if rmt.size != send_counts[j]:
            raise UnrUsageError(
                f"alltoallv_convert: peer {peer} posted {rmt.size}B, "
                f"I send {send_counts[j]}B"
            )
        remote_blks[j] = rmt
        send_blk = ep.blk_init(
            send_mr, send_displs[j], send_counts[j], signal=send_finish_sig
        )
        plan.record_put(send_blk, rmt)
    return plan

"""Deterministic discrete-event simulation kernel (SimPy-style).

Public surface:

* :class:`~repro.sim.core.Environment` — clock + pending-event scheduler.
* :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.Process`, :class:`~repro.sim.core.AllOf`,
  :class:`~repro.sim.core.AnyOf`, :class:`~repro.sim.core.Interrupt`.
* :class:`~repro.sim.scheduler.Scheduler` — pluggable event queue:
  :class:`~repro.sim.scheduler.CalendarScheduler` (default) and the
  reference :class:`~repro.sim.scheduler.HeapScheduler`.
* :class:`~repro.sim.resources.Store`, `PriorityStore`, `FilterStore`,
  :class:`~repro.sim.resources.Resource`.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Deferred,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .resources import FilterStore, PriorityStore, Resource, Store
from .scheduler import CalendarScheduler, HeapScheduler, Scheduler

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "Condition",
    "Deferred",
    "Environment",
    "Event",
    "FilterStore",
    "HeapScheduler",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "Scheduler",
    "SimulationError",
    "StopProcess",
    "Store",
    "Timeout",
]

"""Deterministic discrete-event simulation kernel (SimPy-style).

Public surface:

* :class:`~repro.sim.core.Environment` — clock + event heap.
* :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.Process`, :class:`~repro.sim.core.AllOf`,
  :class:`~repro.sim.core.AnyOf`, :class:`~repro.sim.core.Interrupt`.
* :class:`~repro.sim.resources.Store`, `PriorityStore`, `FilterStore`,
  :class:`~repro.sim.resources.Resource`.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Deferred,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .resources import FilterStore, PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Deferred",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "StopProcess",
    "Store",
    "Timeout",
]

"""Pluggable event schedulers for the simulation kernel.

The kernel (:mod:`repro.sim.core`) keys every pending event with a
``(time, phase, seq)`` tuple: ``phase`` 0 for priority interrupts and 1
for normal events, ``seq`` a monotonically increasing sequence number.
Because ``seq`` is unique the key is a *total* order — there are no
ties — so any scheduler that pops entries in exact ascending key order
reproduces the historical ``heapq`` pop sequence bit-for-bit.  That
identity is what keeps the golden wire fingerprints stable across
scheduler implementations, and it is what the Hypothesis differential
test in ``tests/sim/test_scheduler.py`` pins.

Two implementations are provided:

:class:`HeapScheduler`
    The reference: a single binary heap, ``O(log n)`` per operation.
    This is the pre-refactor kernel behaviour, kept as the oracle for
    differential testing.

:class:`CalendarScheduler`
    A calendar queue tuned for the cluster-scale runs (1728 nodes,
    multi-thousand ranks).  Entries are binned into fixed-width *days*
    (dict keyed by ``int(time // width)``); only non-empty days carry
    any cost, and a small index heap tracks which days exist.  The
    nearest day is *promoted* on demand: its bucket is sorted once with
    Timsort (tuple comparison — identical ordering to ``heapq``) and
    drained by index.  Same-day entries that arrive while the day is
    being drained are placed with ``bisect.insort`` restricted to the
    undrained tail, which stays sorted by construction.

    Why this is safe: the kernel only schedules at ``now + delay`` with
    ``delay >= 0``, so every new entry's time is ``>= now``.  Any entry
    landing on a day *earlier* than the promoted day (possible only for
    pushes issued between runs, after the queue drained past ``now``'s
    own day) still sorts before everything in later days, so it is
    merged into the current bucket's tail; entries for later days go to
    their own buckets.  Either way ascending key order is preserved.

Events at the *same* timestamp always share a bucket regardless of
width, exactly as they share heap locality in ``heapq`` — delay-0
cascades cost the same in both.  The width only controls how many
*distinct* timestamps share a sort.

``heapq`` use outside ``sim/core.py`` is normally an unrlint violation
(UNR004); this module is a sanctioned kernel module and is listed in
``LintConfig.heapq_allowed_suffixes``.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Dict, List, Tuple

__all__ = [
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "DEFAULT_BUCKET_WIDTH",
]

#: Entry layout shared with the kernel: ``(time, phase, seq, event)``.
Entry = Tuple[float, int, int, Any]

#: Default calendar day width, in simulated seconds.  The netsim models
#: microsecond-scale NIC/link latencies (``env.now`` is in seconds), so
#: one microsecond groups a handful of causally-adjacent events per day
#: without ever letting a single bucket grow with the cluster size.
DEFAULT_BUCKET_WIDTH = 1e-6

_INF = float("inf")


class Scheduler:
    """Interface the kernel drives; see module docstring for the contract.

    Implementations must pop entries in exact ascending ``(time, phase,
    seq)`` order and support ``len()`` (the observability layer records
    queue depth per step).
    """

    __slots__ = ()

    def push(self, entry: Entry) -> None:
        raise NotImplementedError

    def pop(self) -> Entry:
        """Remove and return the smallest entry (raises IndexError if empty)."""
        raise NotImplementedError

    def peek_time(self) -> float:
        """Time of the smallest entry, or ``inf`` when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class HeapScheduler(Scheduler):
    """Reference scheduler: one global binary heap (the historical kernel)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else _INF

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler(Scheduler):
    """Calendar queue: fixed-width day buckets + an index heap of days.

    ``_cur_list``/``_cur_pos`` hold the promoted (nearest) day: a
    Timsort-sorted bucket drained by advancing ``_cur_pos``.  ``_days``
    maps day index -> unsorted bucket for every other non-empty day, and
    ``_day_heap`` holds each such day index exactly once (pushed only
    when its bucket is created, so empty days never cost anything).
    """

    __slots__ = (
        "_width",
        "_days",
        "_day_heap",
        "_cur_day",
        "_cur_list",
        "_cur_pos",
        "_count",
    )

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = float(width)
        self._days: Dict[int, List[Entry]] = {}
        self._day_heap: List[int] = []
        self._cur_day = -1  # no promoted day yet; real days are >= 0
        self._cur_list: List[Entry] = []
        self._cur_pos = 0
        self._count = 0

    def push(self, entry: Entry) -> None:
        day = int(entry[0] // self._width)
        if day <= self._cur_day:
            # Same day as the one being drained (the common delay-0 /
            # sub-width case), or — only between runs — an earlier day
            # that still sorts before every later bucket.  The tail
            # ``_cur_list[_cur_pos:]`` is sorted, so a bounded insort
            # keeps it that way.
            insort(self._cur_list, entry, lo=self._cur_pos)
        else:
            bucket = self._days.get(day)
            if bucket is None:
                self._days[day] = [entry]
                heapq.heappush(self._day_heap, day)
            else:
                bucket.append(entry)
        self._count += 1

    def _promote(self) -> None:
        """Replace the exhausted current day with the nearest pending one."""
        day = heapq.heappop(self._day_heap)
        bucket = self._days.pop(day)
        bucket.sort()
        self._cur_day = day
        self._cur_list = bucket
        self._cur_pos = 0

    def pop(self) -> Entry:
        if self._cur_pos >= len(self._cur_list):
            self._promote()  # IndexError on empty scheduler, as documented
        entry = self._cur_list[self._cur_pos]
        self._cur_list[self._cur_pos] = None  # type: ignore[call-overload]
        self._cur_pos += 1
        self._count -= 1
        return entry

    def peek_time(self) -> float:
        if self._cur_pos >= len(self._cur_list):
            if not self._day_heap:
                return _INF
            self._promote()
        return self._cur_list[self._cur_pos][0]

    def __len__(self) -> int:
        return self._count

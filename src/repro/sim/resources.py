"""Shared-resource primitives for the simulation kernel.

Provides the queueing abstractions used by the network and runtime
layers:

* :class:`Store` — a FIFO buffer of items with optional capacity; ``get``
  and ``put`` return events (back-pressure falls out naturally).
* :class:`PriorityStore` — like :class:`Store` but items pop lowest-key
  first (used for ordered delivery / control channels).
* :class:`FilterStore` — ``get`` takes a predicate (used for MPI tag
  matching).
* :class:`Resource` — counting semaphore (used for CPU cores and NIC
  injection serialization).
"""

from __future__ import annotations

# PriorityStore keeps a private heap with its own (priority, seq)
# tie-break, so ordering stays deterministic without the kernel heap.
import heapq  # unrlint: disable=UNR004
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Store", "PriorityStore", "FilterStore", "Resource"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any) -> None:
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; succeeds with the item."""

    __slots__ = ()


class Store:
    """FIFO item buffer with optional capacity.

    ``put`` blocks (stays untriggered) while the store is full; ``get``
    blocks while it is empty.  Waiters are served in FIFO order.
    """

    __slots__ = ("env", "capacity", "items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        evt = StorePut(self.env, item)
        self._putters.append(evt)
        self._dispatch()
        return evt

    def get(self) -> StoreGet:
        evt = StoreGet(self.env)
        self._getters.append(evt)
        self._dispatch()
        return evt

    def try_get(self) -> Any:
        """Non-blocking pop: return an item or ``None`` if empty."""
        if self.items:
            item = self._pop_item()
            self._dispatch()
            return item
        return None

    def put_nowait(self, item: Any) -> bool:
        """Synchronous put: store ``item`` and serve waiting getters
        without creating a put event.  Returns ``False`` when the store
        is full — the caller must then fall back to the blocking
        :meth:`put` to keep backpressure semantics.  When it succeeds,
        no putter can be waiting (putters only queue while full), so
        FIFO fairness is preserved.
        """
        if self.is_full:
            return False
        self._store_item(item)
        self._dispatch()
        return True

    # -- internals ----------------------------------------------------------
    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _pop_item(self) -> Any:
        return self.items.popleft()

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move waiting putters into the buffer while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self._store_item(put.item)
                put.succeed()
                progress = True
            # Serve waiting getters from the buffer.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self._pop_item())
                progress = True


class PriorityStore(Store):
    """Store whose items pop in ascending order of ``(priority, seq)``.

    Items are inserted as ``put((priority, item))`` or any comparable
    object; internally a heap with an insertion sequence breaks ties so
    equal priorities stay FIFO.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: List[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def _store_item(self, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (item[0], self._seq, item))

    def _pop_item(self) -> Any:
        return heapq.heappop(self._heap)[2]

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self._heap) < self.capacity:
                put = self._putters.popleft()
                self._store_item(put.item)
                put.succeed()
                progress = True
            while self._getters and self._heap:
                get = self._getters.popleft()
                get.succeed(self._pop_item())
                progress = True


class FilterStoreGet(StoreGet):
    """Get event carrying the match predicate."""

    __slots__ = ("_filter",)

    def __init__(self, env: Environment, filter: Callable[[Any], bool]) -> None:  # noqa: A002
        super().__init__(env)
        self._filter = filter


class FilterStore(Store):
    """Store whose ``get`` accepts a predicate; first matching item wins.

    Used for MPI receive matching on ``(source, tag)``.
    """

    __slots__ = ()

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:  # noqa: A002
        evt = FilterStoreGet(self.env, filter)
        self._getters.append(evt)
        self._dispatch()
        return evt

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Try every waiting getter against every item (FIFO per getter).
            remaining: Deque[StoreGet] = deque()
            while self._getters:
                get = self._getters.popleft()
                flt = getattr(get, "_filter", lambda item: True)
                for idx, item in enumerate(self.items):
                    if flt(item):
                        del self.items[idx]
                        get.succeed(item)
                        progress = True
                        break
                else:
                    remaining.append(get)
            self._getters = remaining


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; succeeds on acquisition."""

    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: int) -> None:
        super().__init__(env)
        self.amount = amount


class Resource:
    """A counting semaphore with FIFO waiters.

    Usage::

        req = cores.request()
        yield req
        try:
            yield env.timeout(work)
        finally:
            cores.release(req)
    """

    __slots__ = ("env", "capacity", "in_use", "_waiters")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self, amount: int = 1) -> ResourceRequest:
        if amount < 1 or amount > self.capacity:
            raise SimulationError(
                f"request of {amount} units on capacity-{self.capacity} resource"
            )
        req = ResourceRequest(self.env, amount)
        self._waiters.append(req)
        self._grant()
        return req

    def release(self, request: Optional[ResourceRequest] = None, amount: int = 1) -> None:
        amount = request.amount if request is not None else amount
        self.in_use -= amount
        if self.in_use < 0:
            raise SimulationError("released more units than acquired")
        self._grant()

    def _grant(self) -> None:
        while self._waiters and self._waiters[0].amount <= self.available:
            req = self._waiters.popleft()
            self.in_use += req.amount
            req.succeed()

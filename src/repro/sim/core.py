"""Discrete-event simulation kernel.

This module implements a small, deterministic discrete-event simulator in
the style of SimPy: simulated *processes* are Python generators that yield
:class:`Event` objects and are resumed when those events fire.  The kernel
is the foundation for the cluster/network model (:mod:`repro.netsim`), the
simulated MPI substrate (:mod:`repro.mpi`) and the UNR library itself
(:mod:`repro.core`).

Determinism: every pending event is keyed by ``(time, phase, seq)`` —
``seq`` is unique, so the key is a total order and two runs of the same
program produce identical schedules.  The queue itself is pluggable
(:mod:`repro.sim.scheduler`): the default :class:`CalendarScheduler`
bins events into fixed-width days for cluster-scale runs, and the
reference :class:`HeapScheduler` is the historical single-heap kernel.
Both pop in exact ascending key order, so the choice never changes the
simulation.  All randomness used by higher layers comes from seeded
``numpy.random.Generator`` instances.

Example
-------
>>> env = Environment()
>>> def hello(env, out):
...     yield env.timeout(2.5)
...     out.append(env.now)
>>> out = []
>>> _ = env.process(hello(env, out))
>>> env.run()
>>> out
[2.5]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, cast

from .scheduler import CalendarScheduler, Scheduler

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Deferred",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]

# Sentinel for an event that has not yet been given a value.
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown *into* a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised inside a process generator to terminate it early with a value."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Event:
    """An event that may eventually be *triggered* with a value or an error.

    Processes wait on events by yielding them.  Multiple processes (and
    conditions) can wait on the same event; callbacks run in registration
    order when the event is processed by the environment.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def resolve(self, value: Any = None) -> "Event":
        """Trigger successfully, skipping the heap when nothing listens.

        Semantically :meth:`succeed`, with one fast path: when no
        callback has been registered yet the event is marked *processed*
        in place instead of scheduling a kernel event whose only job
        would be flipping that flag.  Late waiters stay safe — every
        kernel wait path (:meth:`Process._wait_on`, :class:`Condition`)
        already handles processed events.  Hot completion events (the
        NIC ``done`` events) use this so unobserved completions cost
        zero heap traffic.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if self.callbacks:
            return self.succeed(value)
        self._ok = True
        self._value = value
        self._scheduled = True
        self.callbacks = None
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing ever waits on a failed event the environment
        re-raises at the end of the run (unless :meth:`defused`).
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


def _run_deferred(event: "Event") -> None:
    deferred = cast("Deferred", event)
    deferred._fn(deferred._value)


class Deferred(Event):
    """A pre-triggered event that runs ``fn(value)`` when it fires.

    The single-heap-entry alternative to wrapping a delayed callback in
    a :class:`Process`: a process costs an Initialize event, one event
    per yield and a final completion event, while a deferred costs
    exactly one heap entry.  The NIC delivery paths
    (:mod:`repro.netsim.nic`) are built on this.
    """

    __slots__ = ("_fn",)

    def __init__(
        self,
        env: "Environment",
        delay: float,
        fn: Callable[[Any], None],
        value: Any = None,
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self._fn = fn
        self._ok = True
        self._value = value
        assert self.callbacks is not None
        self.callbacks.append(_run_deferred)
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Deferred fn={getattr(self._fn, '__name__', self._fn)!r}>"


class Initialize(Event):
    """Internal: kicks a new :class:`Process` on the next step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running simulated process wrapping a generator.

    The process is itself an event that triggers when the generator
    returns (value = return value / ``StopProcess`` value) or raises.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process requires a generator, got {generator!r} "
                "(did you forget to call the function?)"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event currently awaited
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current yield."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a dead process")
        if self._target is None and not self.triggered:
            # Not yet started: delay interrupt until after initialization.
            raise SimulationError("cannot interrupt a process before it starts")
        env = self.env
        target = self._target

        def do_interrupt(_evt: Event) -> None:
            if not self.is_alive:
                return
            # Detach from the event we were waiting for.
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            self._step_throw(Interrupt(cause))

        urgent = Event(env)
        urgent.callbacks.append(do_interrupt)
        urgent._ok = True
        urgent._value = None
        env._schedule(urgent, priority=True)

    # -- plumbing ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step_send(event._value)
        else:
            event._defused = True
            self._step_throw(event._value)

    def _step_send(self, value: Any) -> None:
        env = self.env
        prev, env._active = env._active, self
        try:
            target = self._generator.send(value)
        except StopIteration as exc:
            self.succeed(exc.value)
            return
        except StopProcess as exc:
            self.succeed(exc.value)
            return
        except BaseException as exc:  # noqa: BLE001  # unrlint: disable=UNR005 - rethrown via event.fail
            self.fail(exc)
            return
        finally:
            env._active = prev
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        env = self.env
        prev, env._active = env._active, self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001  # unrlint: disable=UNR005 - rethrown via event.fail
            self.fail(err)
            return
        finally:
            env._active = prev
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        if target.callbacks is None:
            # Already processed: resume immediately on the next step.
            proxy = Event(self.env)
            proxy._ok = target._ok
            proxy._value = target._value
            if not target._ok:
                target._defused = True
            proxy.callbacks.append(self._resume)
            self.env._schedule(proxy)
            self._target = proxy
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """Waits for a set of events according to ``evaluate``.

    The value of a condition is a dict mapping each *triggered* event to
    its value (like SimPy's ConditionValue, simplified).
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for evt in self._events:
            if evt.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for evt in self._events:
            if evt.callbacks is None:  # already processed
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only events whose callbacks have run count as "arrived": a
        # Timeout carries its value from construction, so `triggered`
        # alone would claim future timeouts.
        return {
            evt: evt._value
            for evt in self._events
            if evt.processed and evt._ok
        }


class AllOf(Condition):
    """Condition satisfied when *all* events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda total, done: done == total, events)


class AnyOf(Condition):
    """Condition satisfied when *any one* event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda total, done: done >= 1, events)


class Environment:
    """The simulation environment: clock plus pending-event scheduler."""

    __slots__ = ("_now", "_sched", "_seq", "_active", "obs", "profile")

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self._now = float(initial_time)
        #: Pending-event queue.  Any :class:`repro.sim.scheduler.Scheduler`
        #: yields the identical simulation (total key order); the calendar
        #: queue is the default because it scales to 1728-node clusters.
        self._sched: Scheduler = (
            scheduler if scheduler is not None else CalendarScheduler()
        )
        self._seq = 0
        self._active: Optional[Process] = None
        #: Optional :class:`repro.obs.Recorder` hook, set by
        #: ``Recorder.attach``.  Purely passive: it only counts
        #: dispatched events and tracks heap depth, never schedules.
        self.obs: Optional[Any] = None
        #: Optional :class:`repro.obs.HostProfiler` hook, set by
        #: ``HostProfiler.attach``.  The one sanctioned wall-clock
        #: consumer: it reads the host clock per dispatched event but
        #: never schedules, so profiled runs stay wire-identical.
        self.profile: Optional[Any] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def defer(
        self, delay: float, fn: Callable[[Any], None], value: Any = None
    ) -> Deferred:
        """Run ``fn(value)`` after ``delay`` for one heap entry."""
        return Deferred(self, delay, fn, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        # Priority events (interrupts) sort before normal events at the
        # same timestamp via the phase key; seq breaks all remaining ties.
        phase = 0 if priority else 1
        self._sched.push((self._now + delay, phase, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._sched.peek_time()

    def step(self) -> None:
        """Process one event: advance the clock and run its callbacks."""
        try:
            when, _phase, _seq, event = self._sched.pop()
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = when
        obs = self.obs
        if obs is not None:
            obs.on_sim_step(len(self._sched))
        prof = self.profile
        if prof is not None:
            prof.on_event(event)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``."""
        if until is not None:
            limit = float(until)
            if limit < self._now:
                raise SimulationError(
                    f"until={limit} is in the past (now={self._now})"
                )
        else:
            limit = float("inf")
        sched = self._sched
        while sched and sched.peek_time() <= limit:
            self.step()
        if until is not None and self._now < limit:
            self._now = limit

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator``, run, and return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self._now}"
            )
        if not proc._ok:
            raise proc._value
        return proc._value

"""Custom-bit width validation: the single truncation chokepoint.

Every adapter routes its custom-bit payloads through :func:`fit_custom`
before they reach the wire.  A payload wider than the interface's
Table II budget is *never* silently truncated: the helper first informs
the registered observer (the UnrSanitizer hook, when armed) and then
raises :class:`ChannelError` — the loud-failure discipline of the
paper's bug-avoiding interfaces (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ChannelError", "WidthViolation", "WidthObserver", "fit_custom"]


class ChannelError(RuntimeError):
    """Custom-bit overflow or unsupported primitive on this interface."""


@dataclass(frozen=True)
class WidthViolation:
    """One payload that did not fit an interface's custom-bit budget."""

    what: str  # e.g. "PUT remote"
    interface: str
    value: int
    bits_needed: int
    bits_available: int

    def describe(self) -> str:
        if self.bits_available == 0:
            return (
                f"{self.what}: {self.interface} provides no custom bits; "
                "the Level-0 ordered-message scheme must carry (p, a)"
            )
        return (
            f"{self.what}: payload {self.value:#x} needs {self.bits_needed} "
            f"bits, {self.interface} provides {self.bits_available}"
        )


WidthObserver = Callable[[WidthViolation], None]


def fit_custom(
    value: Optional[int],
    bits: int,
    what: str,
    interface: str,
    observer: Optional[WidthObserver] = None,
) -> int:
    """Validate that ``value`` fits in ``bits`` unsigned custom bits.

    Returns the value (or 0 for ``None``).  On violation the observer —
    if any — is notified first, then :class:`ChannelError` is raised;
    truncation never happens silently.
    """
    if value is None:
        return 0
    if value < 0:
        raise ChannelError(
            f"{what}: custom bits must be packed unsigned, got {value}"
        )
    needed = value.bit_length()
    if bits == 0 or needed > bits:
        if observer is not None:
            observer(
                WidthViolation(
                    what=what,
                    interface=interface,
                    value=value,
                    bits_needed=needed,
                    bits_available=bits,
                )
            )
        if bits == 0:
            raise ChannelError(
                f"{interface} provides no custom bits for {what}; "
                "use the Level-0 ordered-message scheme instead"
            )
        raise ChannelError(
            f"{what}: value needs {needed} bits, {interface} provides {bits}"
        )
    return value

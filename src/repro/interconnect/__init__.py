"""Notifiable RMA Primitives: interface adapters and capabilities.

One adapter per Table II interface (GLEX, Verbs, uTofu, uGNI, PAMI,
Portals) plus the two-sided MPI fallback channel.  The adapters share a
generic RMA engine; only the custom-bit capability descriptors differ.
"""

from .adapters import (
    CHANNEL_TYPES,
    GlexChannel,
    PamiChannel,
    PortalsChannel,
    UgniChannel,
    UtofuChannel,
    VerbsChannel,
    make_channel,
)
from .capabilities import TABLE_II, Capability, get_capability, support_level
from .channel import ChannelError, RmaChannel
from .fallback import MpiFallbackChannel, MpiFallbackConfig
from .width import WidthViolation, fit_custom

__all__ = [
    "CHANNEL_TYPES",
    "Capability",
    "ChannelError",
    "GlexChannel",
    "MpiFallbackChannel",
    "MpiFallbackConfig",
    "PamiChannel",
    "PortalsChannel",
    "RmaChannel",
    "TABLE_II",
    "UgniChannel",
    "UtofuChannel",
    "VerbsChannel",
    "WidthViolation",
    "fit_custom",
    "get_capability",
    "make_channel",
    "support_level",
]

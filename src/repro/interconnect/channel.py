"""UNR Transport Channel base: Notifiable RMA Primitives over a Job.

A channel exposes notifiable PUT/GET between *ranks*: the custom-bit
payloads are validated against the interface's :class:`Capability`
widths (too-wide payloads raise :class:`ChannelError` — the UNR
transport layer must encode within platform limits; that is the whole
point of the support levels).

Channels sit below the unified transfer engine: every PUT/GET/ctrl
post reaches :meth:`RmaChannel.put` / :meth:`RmaChannel.get` through
:meth:`repro.core.engine.TransferEngine.post_op`, which owns stripe
planning, rail selection and retransmission above this layer.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..netsim import alloc_record
from ..runtime import Job
from ..sim import Event
from .capabilities import Capability, support_level
from .width import ChannelError, WidthObserver, fit_custom

__all__ = ["ChannelError", "RmaChannel"]

_SIDE_LABELS = {
    "put_remote": "PUT remote",
    "put_local": "PUT local",
    "get_remote": "GET remote",
    "get_local": "GET local",
}


class RmaChannel:
    """Notifiable RMA over one interface for all ranks of a job."""

    #: overridden by subclasses
    capability: Capability = None  # type: ignore[assignment]
    name: str = "abstract"
    #: True when notification is delivered by the channel software itself
    #: (MPI fallback) rather than via CQ entries + polling.
    software_notify: bool = False

    def __init__(self, job: Job):
        if self.capability is None:
            raise TypeError("RmaChannel subclasses must define a capability")
        self.job = job
        self.env = job.env
        #: Sanitizer hook: called with a WidthViolation before the
        #: ChannelError for any payload that exceeds this interface's
        #: custom-bit budget (see :mod:`repro.interconnect.width`).
        self.width_observer: Optional[WidthObserver] = None

    def check_payload_width(self, value: Optional[int], side: str) -> int:
        """Validate a custom-bit payload against one completion side.

        ``side`` is ``put_remote``/``put_local``/``get_remote``/
        ``get_local``; the effective Table II width of this interface is
        the budget.  All adapters route their payloads through here —
        the one chokepoint the sanitizer hooks.
        """
        cap = self.capability
        bits = getattr(cap, f"effective_{side}")
        return fit_custom(
            value, bits, _SIDE_LABELS[side], cap.interface,
            observer=self.width_observer,
        )

    # ------------------------------------------------------------------
    @property
    def n_rails(self) -> int:
        return self.job.cluster.spec.node.nics

    def hw_atomic_offload(self) -> bool:
        """True when the simulated NICs implement Level-4 atomic add."""
        return bool(self.job.cluster.spec.nic.atomic_offload)

    def level(self) -> int:
        """UNR support level of this channel on this cluster."""
        return support_level(self.capability, self.hw_atomic_offload())

    # ------------------------------------------------------------------
    def put(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        *,
        payload: Any = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        remote_custom: Optional[int] = None,
        local_custom: Optional[int] = None,
        remote_action: Optional[Callable[[], None]] = None,
        local_action: Optional[Callable[[], None]] = None,
        rail: int = 0,
        ordered: bool = False,
        remote_token: Any = None,
        local_token: Any = None,
    ) -> Event:
        """Notifiable PUT; returns the local-completion event.

        ``remote_custom``/``local_custom`` land in the corresponding
        CQ entries.  ``remote_action``/``local_action`` are Level-4
        hardware atomic adds executed by the NIC when supported.
        ``remote_token``/``local_token`` tag the CQ entries for
        duplicate suppression when the reliability layer retransmits.
        """
        if remote_action is None or not self.hw_atomic_offload():
            self.check_payload_width(remote_custom, "put_remote")
        if local_action is None or not self.hw_atomic_offload():
            self.check_payload_width(local_custom, "put_local")
        src_nic = self.job.nic_of(src_rank, rail)
        dst_nic = self.job.nic_of(dst_rank, rail)
        remote_record = None
        if remote_custom is not None:
            remote_record = alloc_record(
                "put_remote",
                custom=remote_custom,
                nbytes=nbytes,
                src_node=src_nic.node.index,
                dst_node=dst_nic.node.index,
                post_time=self.env.now,
                token=remote_token,
            )
        local_record = None
        if local_custom is not None:
            local_record = alloc_record(
                "put_local",
                custom=local_custom,
                nbytes=nbytes,
                src_node=src_nic.node.index,
                dst_node=dst_nic.node.index,
                post_time=self.env.now,
                token=local_token,
            )
        return src_nic.post_put(
            dst_nic,
            nbytes,
            payload=payload,
            on_deliver=on_deliver,
            local_record=local_record,
            remote_record=remote_record,
            remote_action=remote_action,
            local_action=local_action,
            ordered=ordered,
        )

    # ------------------------------------------------------------------
    def get(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        *,
        fetch: Optional[Callable[[], Any]] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        remote_custom: Optional[int] = None,
        local_custom: Optional[int] = None,
        remote_action: Optional[Callable[[], None]] = None,
        local_action: Optional[Callable[[], None]] = None,
        rail: int = 0,
        remote_token: Any = None,
        local_token: Any = None,
    ) -> Event:
        """Notifiable GET from ``dst_rank``'s memory into ``src_rank``'s."""
        if remote_action is None or not self.hw_atomic_offload():
            self.check_payload_width(remote_custom, "get_remote")
        if local_action is None or not self.hw_atomic_offload():
            self.check_payload_width(local_custom, "get_local")
        src_nic = self.job.nic_of(src_rank, rail)
        dst_nic = self.job.nic_of(dst_rank, rail)
        remote_record = None
        if remote_custom is not None:
            remote_record = alloc_record(
                "get_remote",
                custom=remote_custom,
                nbytes=nbytes,
                src_node=src_nic.node.index,
                dst_node=dst_nic.node.index,
                post_time=self.env.now,
                token=remote_token,
            )
        local_record = None
        if local_custom is not None:
            local_record = alloc_record(
                "get_local",
                custom=local_custom,
                nbytes=nbytes,
                src_node=src_nic.node.index,
                dst_node=dst_nic.node.index,
                post_time=self.env.now,
                token=local_token,
            )
        return src_nic.post_get(
            dst_nic,
            nbytes,
            fetch=fetch,
            on_deliver=on_deliver,
            local_record=local_record,
            remote_record=remote_record,
            remote_action=remote_action,
            local_action=local_action,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} level={self.level()}>"

"""Interconnect capability descriptors (paper Table II) and the UNR
support-level classification rule (paper Table I / §IV-C).

The *custom bits* of a Notifiable RMA Primitive are the opaque payload a
PUT/GET deposits into a completion-queue entry.  Their width at the
remote side of a PUT determines how much of the MMAS machinery (pointer
``p`` + addend ``a``) fits in hardware, which is exactly how the paper
classifies NICs into support levels:

====== ============================= =======================================
Level  PUT custom bits at remote     Implementation specification
====== ============================= =======================================
0      0                             extra order-preserving message for p, a
1      8 or 16                       all bits are an index for p; a = −1
2      32                            mode 1: all p; mode 2: x bits p, 32−x a
3      64 or 128                     half p, half a — full MMAS
4      128 + hardware atomic add     no polling thread required
====== ============================= =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Capability", "support_level", "TABLE_II", "get_capability"]


@dataclass(frozen=True)
class Capability:
    """Custom-bit widths of one low-level interface (one Table II row).

    Widths are in bits.  ``shared_put_bits`` marks PAMI-style interfaces
    where one field serves both local and remote completions (halving
    the effective remote width).  ``hash_local`` marks Portals-style
    interfaces with no local custom bits but a memory-region/offset pair
    usable as a lookup hash (effectively 64 bits of local context).
    """

    interface: str
    interconnect: str
    systems: str
    put_local: int
    put_remote: int
    get_local: int
    get_remote: int
    shared_put_bits: bool = False
    hash_local: bool = False

    @property
    def effective_put_remote(self) -> int:
        """Remote PUT custom bits available to UNR after sharing."""
        if self.shared_put_bits:
            return self.put_remote // 2
        return self.put_remote

    @property
    def effective_put_local(self) -> int:
        if self.hash_local:
            return 64
        if self.shared_put_bits:
            return self.put_local // 2
        return self.put_local

    @property
    def effective_get_local(self) -> int:
        if self.hash_local:
            return 64
        return self.get_local

    @property
    def effective_get_remote(self) -> int:
        return self.get_remote

    def display(self, field: str) -> str:
        """Formatted cell for the Table II report."""
        value = getattr(self, field)
        if self.hash_local and field in ("put_local", "get_local"):
            return "Hash"
        if self.shared_put_bits and field in ("put_local", "put_remote"):
            return f"{value}(Shared)"
        return str(value)


def support_level(cap: Capability, hw_atomic_offload: bool = False) -> int:
    """Classify ``cap`` into a UNR support level (paper Table I).

    The classifier uses the PUT-at-remote width (paper §IV-C: PUT is the
    primitive that matters for optimizing two-sided hotspots, and its
    remote width is never larger than the other widths in practice).
    Level 4 additionally requires the NIC to execute ``*p += a`` itself.
    """
    bits = cap.effective_put_remote
    if hw_atomic_offload and bits >= 128:
        return 4
    if bits >= 64:
        return 3
    if bits >= 32:
        return 2
    if bits > 0:
        return 1
    return 0


#: Paper Table II, verbatim.
TABLE_II: Dict[str, Capability] = {
    "glex": Capability(
        interface="Glex",
        interconnect="TH Express network",
        systems="Tianhe-2A(1), Tianhe-Xingyi",
        put_local=128, put_remote=128, get_local=128, get_remote=128,
    ),
    "verbs": Capability(
        interface="Verbs",
        interconnect="Slingshot, Infiniband, RoCE",
        systems="Frontier(1), Summit(1)",
        put_local=64, put_remote=32, get_local=64, get_remote=0,
    ),
    "utofu": Capability(
        interface="uTofu",
        interconnect="Tofu Interconnect",
        systems="Fugaku(1), K(1)",
        put_local=64, put_remote=8, get_local=64, get_remote=8,
    ),
    "ugni": Capability(
        interface="uGNI",
        interconnect="Aries Interconnect",
        systems="Piz Daint(3), Trinity(6)",
        put_local=32, put_remote=32, get_local=32, get_remote=32,
    ),
    "pami": Capability(
        interface="PAMI",
        interconnect="Blue Gene/Q Interconnection",
        systems="Sequoia(1), Mira(3)",
        put_local=64, put_remote=64, get_local=64, get_remote=0,
        shared_put_bits=True,
    ),
    "portals": Capability(
        interface="Portals",
        interconnect="SeaStar Interconnect",
        systems="Kraken(3), Jaguar(6)",
        put_local=0, put_remote=64, get_local=0, get_remote=0,
        hash_local=True,
    ),
}


def get_capability(name: str) -> Capability:
    try:
        return TABLE_II[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown interface {name!r}; known: {sorted(TABLE_II)}"
        ) from None

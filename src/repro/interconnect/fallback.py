"""MPI fallback channel (paper §IV-A, Figure 6 "UNR Fallback").

When no native Notifiable RMA Primitive is available, UNR transports
messages over plain two-sided MPI.  Notification is then *software*:
the arrival of the (ordered) MPI message itself tells the receiver the
data is complete, so no custom bits and no polling thread are involved —
but every transfer pays the MPI software overhead, and transfers above
the eager threshold pay a rendezvous handshake (an extra round trip
before the data moves).

This is why the fallback's usefulness is platform-dependent (paper
Figure 6): on TH-XY the MPI stack is lean (fallback still +20% for
PowerLLEL thanks to sync removal), while on TH-2A the rendezvous
handshake of its dated MPI serializes against the notification traffic
(−61%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..units import US
from ..runtime import Job
from ..sim import Event
from .capabilities import Capability
from .channel import RmaChannel

__all__ = ["MpiFallbackConfig", "MpiFallbackChannel"]


@dataclass(frozen=True)
class MpiFallbackConfig:
    """Software characteristics of the host MPI implementation."""

    eager_threshold: int = 16 * 1024
    sw_overhead_us: float = 0.8  # per-message send+match cost
    rendezvous_rtts: float = 1.0  # handshake round trips above threshold
    #: multiplicative penalty on serialization for rendezvous traffic
    #: (models pipelining loss of handshake-per-message protocols)
    rendezvous_bw_penalty: float = 1.0


_FALLBACK_CAP = Capability(
    interface="MPI",
    interconnect="any (two-sided fallback)",
    systems="all",
    put_local=0, put_remote=0, get_local=0, get_remote=0,
)


class MpiFallbackChannel(RmaChannel):
    """UNR transport channel over two-sided MPI messages."""

    capability = _FALLBACK_CAP
    name = "mpi"
    #: notifications are delivered by MPI progress, not by CQ polling
    software_notify = True

    def __init__(self, job: Job, config: Optional[MpiFallbackConfig] = None):
        self.job = job
        self.env = job.env
        self.config = config or MpiFallbackConfig()

    def level(self) -> int:
        """The fallback is the Level-0 scheme: correctness, no guarantees."""
        return 0

    def put(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        *,
        payload: Any = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        remote_custom: Optional[int] = None,
        local_custom: Optional[int] = None,
        remote_action: Optional[Callable[[], None]] = None,
        local_action: Optional[Callable[[], None]] = None,
        rail: int = 0,
        ordered: bool = True,
        remote_token: Any = None,
        local_token: Any = None,
    ) -> Event:
        # remote_token/local_token are accepted for interface parity and
        # ignored: MPI delivery is already exactly-once (reliable lane).
        cfg = self.config
        env = self.env
        src_nic = self.job.nic_of(src_rank, rail)
        dst_nic = self.job.nic_of(dst_rank, rail)
        done = env.event()
        # Looked up per call: the recorder may attach after channel creation.
        rec = getattr(self.job.cluster, "obs", None)
        if rec is not None:
            rec.count("fallback.puts")
            rec.count(
                "fallback.rendezvous" if nbytes > cfg.eager_threshold
                else "fallback.eager"
            )

        def deliver(data: Any) -> None:
            if on_deliver is not None:
                on_deliver(data)
            if remote_action is not None:
                remote_action()

        def transfer():
            # Per-message MPI software overhead on the sender.
            yield env.timeout(cfg.sw_overhead_us * US)
            if nbytes > cfg.eager_threshold:
                # Rendezvous: RTS/CTS handshake round trip(s) first.
                rtt = 2.0 * src_nic.spec.latency + 2.0 * cfg.sw_overhead_us * US
                yield env.timeout(cfg.rendezvous_rtts * rtt)
                eff_bytes = int(nbytes * cfg.rendezvous_bw_penalty)
            else:
                eff_bytes = nbytes
            inj = src_nic.post_put(
                dst_nic,
                eff_bytes,
                payload=payload,
                on_deliver=deliver,
                ordered=True,  # MPI p2p is ordered per (src, dst)
            )
            yield inj
            if local_action is not None:
                local_action()
            done.succeed(env.now)

        env.process(transfer(), name="mpi-fallback-put")
        return done

    def get(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        *,
        fetch: Optional[Callable[[], Any]] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        remote_custom: Optional[int] = None,
        local_custom: Optional[int] = None,
        remote_action: Optional[Callable[[], None]] = None,
        local_action: Optional[Callable[[], None]] = None,
        rail: int = 0,
        remote_token: Any = None,
        local_token: Any = None,
    ) -> Event:
        """Emulated GET: a request message plus a data message back."""
        cfg = self.config
        env = self.env
        src_nic = self.job.nic_of(src_rank, rail)
        dst_nic = self.job.nic_of(dst_rank, rail)
        done = env.event()
        rec = getattr(self.job.cluster, "obs", None)
        if rec is not None:
            rec.count("fallback.gets")

        def transfer():
            # Request leg (small message, sender overhead).
            yield env.timeout(cfg.sw_overhead_us * US)
            req_done = env.event()
            src_nic.post_put(
                dst_nic, 64, on_deliver=lambda _: req_done.succeed(), ordered=True
            )
            yield req_done
            data = fetch() if fetch is not None else None
            if remote_action is not None:
                remote_action()
            # Response leg with the data.
            yield env.timeout(cfg.sw_overhead_us * US)
            resp_done = env.event()
            dst_nic.post_put(
                src_nic,
                nbytes,
                payload=data,
                on_deliver=lambda d: resp_done.succeed(d),
                ordered=True,
            )
            got = yield resp_done
            if on_deliver is not None:
                on_deliver(got)
            if local_action is not None:
                local_action()
            done.succeed(env.now)

        env.process(transfer(), name="mpi-fallback-get")
        return done

"""Concrete interface adapters: one :class:`RmaChannel` per Table II row.

All six adapters share the generic RMA engine; what differs is the
capability descriptor (custom-bit widths) — which is exactly the paper's
point: once the Notifiable RMA Primitives are abstracted, only the
width bookkeeping is platform-specific.
"""

from __future__ import annotations

from .capabilities import TABLE_II
from .channel import RmaChannel

__all__ = [
    "GlexChannel",
    "VerbsChannel",
    "UtofuChannel",
    "UgniChannel",
    "PamiChannel",
    "PortalsChannel",
    "CHANNEL_TYPES",
    "make_channel",
]


class GlexChannel(RmaChannel):
    """TH Express GLEX: 128 custom bits everywhere → Level 3 (4 with
    hardware atomic offload, the co-design the paper proposes)."""

    capability = TABLE_II["glex"]
    name = "glex"


class VerbsChannel(RmaChannel):
    """libibverbs (InfiniBand / RoCE / Slingshot): 32-bit immediate data
    on RDMA-write-with-imm, no remote bits on reads → Level 2."""

    capability = TABLE_II["verbs"]
    name = "verbs"


class UtofuChannel(RmaChannel):
    """Fujitsu uTofu: 8 remote custom bits → Level 1."""

    capability = TABLE_II["utofu"]
    name = "utofu"


class UgniChannel(RmaChannel):
    """Cray uGNI (Aries): 32 bits → Level 2."""

    capability = TABLE_II["ugni"]
    name = "ugni"


class PamiChannel(RmaChannel):
    """IBM PAMI (Blue Gene/Q): 64 bits shared between local and remote
    → effectively 32 each → Level 2."""

    capability = TABLE_II["pami"]
    name = "pami"


class PortalsChannel(RmaChannel):
    """Portals 3.3 (SeaStar): 64 remote bits; no local custom bits but
    the memory-region/offset pair is a usable local hash → Level 3."""

    capability = TABLE_II["portals"]
    name = "portals"


CHANNEL_TYPES = {
    cls.name: cls
    for cls in (
        GlexChannel,
        VerbsChannel,
        UtofuChannel,
        UgniChannel,
        PamiChannel,
        PortalsChannel,
    )
}


def make_channel(name: str, job) -> RmaChannel:
    """Instantiate the adapter registered under ``name`` for ``job``."""
    try:
        cls = CHANNEL_TYPES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown channel {name!r}; known: {sorted(CHANNEL_TYPES)}"
        ) from None
    return cls(job)

"""Experiment platforms (paper Table III) and synthetic level testbeds."""

from .registry import (
    PLATFORMS,
    Platform,
    get_platform,
    make_job,
    table3_rows,
)

__all__ = ["PLATFORMS", "Platform", "get_platform", "make_job", "table3_rows"]

"""The four evaluation platforms of paper Table III, calibrated.

Link rates come straight from the table (2×200, 114, 100, 25 Gbit/s).
Base latencies and software overheads are calibrated to typical
published figures for each fabric generation (GLEX ≈ 1.3 µs, EDR
InfiniBand ≈ 1.1 µs, 25G RoCE ≈ 3 µs) — the absolute values are
simulator inputs; what the reproduction checks is the *shape* of the
results across schemes and platforms (DESIGN.md §3).

The per-platform :class:`~repro.mpi.MpiConfig` encodes the character of
the host MPI: TH-2A's dated stack has expensive rendezvous handshakes
(which is why the paper's UNR-fallback slows PowerLLEL down by 61%
there), while TH-XY ships a lean MPI (fallback still +20%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..interconnect import MpiFallbackConfig
from ..mpi import MpiConfig
from ..netsim import Cluster, ClusterSpec, FabricSpec, NicSpec, NodeSpec
from ..runtime import Job
from ..sim import Environment

__all__ = ["Platform", "PLATFORMS", "get_platform", "make_job", "table3_rows"]


@dataclass(frozen=True)
class Platform:
    """One HPC system: hardware spec + software (MPI) characteristics."""

    name: str
    abbrev: str
    deployed: int
    cpu_desc: str
    nic_desc: str
    max_nodes: int
    node: NodeSpec
    nic: NicSpec
    fabric: FabricSpec
    channel: str  # native UNR channel
    mpi: MpiConfig
    fallback: MpiFallbackConfig

    def cluster_spec(self, n_nodes: Optional[int] = None, offload: bool = False, seed: int = 0xC0FFEE) -> ClusterSpec:
        n = n_nodes if n_nodes is not None else self.max_nodes
        if n > self.max_nodes:
            raise ValueError(
                f"{self.abbrev} has {self.max_nodes} nodes, asked for {n}"
            )
        nic = self.nic.with_offload() if offload else self.nic
        return ClusterSpec(self.abbrev, n, self.node, nic, self.fabric, seed=seed)

    def make_cluster(self, env: Environment, n_nodes: Optional[int] = None, **kw) -> Cluster:
        return Cluster(env, self.cluster_spec(n_nodes, **kw))


PLATFORMS: Dict[str, Platform] = {
    "th-xy": Platform(
        name="Tianhe-Xingyi Supercomputing System",
        abbrev="TH-XY",
        deployed=2024,
        cpu_desc="2x Multi-core CPU",
        nic_desc="2x200Gbps new TH Express NICs",
        max_nodes=1728,
        node=NodeSpec(cores=64, nics=2, core_gflops=35.0),
        nic=NicSpec(
            bandwidth_gbps=200.0,
            latency_us=1.3,
            msg_overhead_us=0.25,
            rx_overhead_us=0.15,
        ),
        fabric=FabricSpec(routing_jitter=0.25),
        channel="glex",
        mpi=MpiConfig(
            eager_threshold=32 * 1024,
            sw_overhead_us=0.6,
            rendezvous_rtts=1.0,
            fence_overhead_us=1.2,
            pscw_overhead_us=0.9,
            lock_overhead_us=0.8,
        ),
        fallback=MpiFallbackConfig(
            eager_threshold=32 * 1024,
            sw_overhead_us=0.6,
            rendezvous_rtts=1.0,
            rendezvous_bw_penalty=1.0,
        ),
    ),
    "th-2a": Platform(
        name="Tianhe-2A Supercomputing System",
        abbrev="TH-2A",
        deployed=2013,
        cpu_desc="2x Xeon E5-2692 v2 12-core CPU",
        nic_desc="114Gbps TH Express NIC",
        max_nodes=192,
        node=NodeSpec(cores=24, nics=1, core_gflops=18.0),
        nic=NicSpec(
            bandwidth_gbps=114.0,
            latency_us=1.6,
            msg_overhead_us=0.5,
            rx_overhead_us=0.3,
        ),
        fabric=FabricSpec(routing_jitter=0.3),
        channel="glex",
        mpi=MpiConfig(
            eager_threshold=8 * 1024,
            sw_overhead_us=1.6,
            rendezvous_rtts=2.0,
            fence_overhead_us=2.5,
            pscw_overhead_us=2.0,
            lock_overhead_us=1.8,
        ),
        # The dated MPI stack: per-message costs and rendezvous
        # handshakes dominate when UNR's fallback pushes its traffic
        # through it (Figure 6: -61% on TH-2A).
        fallback=MpiFallbackConfig(
            eager_threshold=8 * 1024,
            sw_overhead_us=1.6,
            rendezvous_rtts=3.0,
            # The dated MPI's rendezvous pipeline collapses under the
            # one-sided-emulation traffic pattern (no pre-posted
            # receives): effective bandwidth drops ~3x, which is what
            # produces the paper's -61% fallback result on TH-2A.
            rendezvous_bw_penalty=3.2,
        ),
    ),
    "hpc-ib": Platform(
        name="HPC system interconnected by Infiniband",
        abbrev="HPC-IB",
        deployed=2019,
        cpu_desc="2x Xeon Gold 6150 18-core CPU",
        nic_desc="100Gbps EDR ConnectX-5 NIC",
        max_nodes=24,
        node=NodeSpec(cores=18, nics=1, core_gflops=25.0),
        nic=NicSpec(
            bandwidth_gbps=100.0,
            latency_us=1.1,
            msg_overhead_us=0.3,
            rx_overhead_us=0.2,
        ),
        fabric=FabricSpec(routing_jitter=0.2),
        channel="verbs",
        mpi=MpiConfig(
            eager_threshold=16 * 1024,
            sw_overhead_us=0.5,
            rendezvous_rtts=1.0,
            fence_overhead_us=1.0,
            pscw_overhead_us=0.5,
            lock_overhead_us=0.6,
        ),
        fallback=MpiFallbackConfig(
            eager_threshold=16 * 1024,
            sw_overhead_us=0.5,
            rendezvous_rtts=1.0,
            rendezvous_bw_penalty=1.1,
        ),
    ),
    "hpc-roce": Platform(
        name="HPC system interconnected by RoCE",
        abbrev="HPC-RoCE",
        deployed=2019,
        cpu_desc="2x Xeon Gold 6150 18-core CPU",
        nic_desc="25Gbps ConnectX-4 Lx NIC",
        max_nodes=12,
        node=NodeSpec(cores=18, nics=1, core_gflops=25.0),
        nic=NicSpec(
            bandwidth_gbps=25.0,
            latency_us=3.0,
            msg_overhead_us=0.5,
            rx_overhead_us=0.4,
        ),
        fabric=FabricSpec(routing_jitter=0.3),
        channel="verbs",
        mpi=MpiConfig(
            eager_threshold=16 * 1024,
            sw_overhead_us=0.8,
            rendezvous_rtts=1.0,
            fence_overhead_us=1.4,
            pscw_overhead_us=0.8,
            lock_overhead_us=0.9,
        ),
        fallback=MpiFallbackConfig(
            eager_threshold=16 * 1024,
            sw_overhead_us=0.8,
            rendezvous_rtts=1.0,
            rendezvous_bw_penalty=1.15,
        ),
    ),
}


def get_platform(name: str) -> Platform:
    key = name.lower()
    if key not in PLATFORMS:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(PLATFORMS)}")
    return PLATFORMS[key]


def make_job(
    platform: str,
    n_nodes: int,
    ranks_per_node: int = 1,
    *,
    offload: bool = False,
    seed: int = 0xC0FFEE,
) -> Job:
    """Build an :class:`Environment` + cluster + job for ``platform``."""
    plat = get_platform(platform)
    env = Environment()
    cluster = Cluster(env, plat.cluster_spec(n_nodes, offload=offload, seed=seed))
    return Job(cluster, ranks_per_node=ranks_per_node)


def table3_rows():
    """Rows of paper Table III from the registry (for the bench report)."""
    rows = []
    for plat in PLATFORMS.values():
        rows.append(
            {
                "system": f"{plat.name} ({plat.abbrev}, {plat.deployed})",
                "cpu": plat.cpu_desc,
                "nics": plat.nic_desc,
                "used_nodes": plat.max_nodes,
                "channel": plat.channel,
            }
        )
    return rows

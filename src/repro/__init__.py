"""Reproduction of "UNR: Unified Notifiable RMA Library for HPC" (SC 2024).

Package map (DESIGN.md has the full inventory):

* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.netsim` — simulated cluster: nodes, multi-rail NICs with
  completion queues and custom bits, fabric timing, CPU cores.
* :mod:`repro.interconnect` — Notifiable RMA Primitives adapters
  (GLEX/Verbs/uTofu/uGNI/PAMI/Portals + MPI fallback), Table II.
* :mod:`repro.core` — **UNR itself**: MMAS signals, BLK handles,
  support levels, polling engine, notified PUT/GET, plans, converters.
* :mod:`repro.mpi` — simulated MPI baseline (p2p, collectives, RMA
  windows with Fence/PSCW/Lock synchronization).
* :mod:`repro.powerllel` — the driving application: pencil-decomposed
  pressure-Poisson CFD pipeline in MPI and UNR backends.
* :mod:`repro.platforms` — the four Table III systems, calibrated.
* :mod:`repro.bench` — drivers regenerating every table and figure.
* :mod:`repro.obs` — observability: event/span/metric recorder over
  simulated time, Perfetto export, bench records (docs/observability.md).
"""

from .core import (
    Blk,
    MemoryRegion,
    PollingConfig,
    RmaPlan,
    Signal,
    Unr,
    UnrEndpoint,
    UnrSyncError,
    UnrSyncWarning,
)
from .netsim import Cluster, ClusterSpec, FabricSpec, NicSpec, NodeSpec
from .obs import Recorder
from .platforms import PLATFORMS, get_platform, make_job
from .runtime import Job, RankContext, run_job
from .sim import Environment

__version__ = "1.0.0"

__all__ = [
    "Blk",
    "Cluster",
    "ClusterSpec",
    "Environment",
    "FabricSpec",
    "Job",
    "MemoryRegion",
    "NicSpec",
    "NodeSpec",
    "PLATFORMS",
    "PollingConfig",
    "RankContext",
    "Recorder",
    "RmaPlan",
    "Signal",
    "Unr",
    "UnrEndpoint",
    "UnrSyncError",
    "UnrSyncWarning",
    "__version__",
    "get_platform",
    "make_job",
    "run_job",
]

"""The :class:`Recorder`: process-wide event/span/metric registry.

Every layer of the reproduction emits into one recorder attached to the
cluster — the sim kernel (event dispatch counts, heap depth), netsim
(fragment lifecycles, per-rail utilisation, CQ depth/stalls, fault
events), the UNR core (plan spans, signal wait→notify latency, poll
iterations, custom-bit overflow fallbacks), the MPI substrate
(eager/rendezvous choice, collective phases) and the reliability layer
(retransmits, failovers, dedup hits).

Design rules, in priority order:

1. **Passive.**  Recording is synchronous appends into Python
   lists/dicts.  The recorder never schedules simulation events, never
   consumes RNG draws, and never reads a wall clock (timestamps come
   from ``env.now`` only — statically enforced by unrlint rule UNR006).
   An armed run is therefore trace-fingerprint-identical to a disarmed
   one, the same guarantee as :class:`~repro.analysis.sanitizer.UnrSanitizer`.
2. **Chokepointed.**  Hot paths pay one ``None`` check when disarmed;
   bulk statistics (NIC counters, CQ high-water marks, ``Unr.stats``,
   fault-injector tallies) are *pulled* by snapshot-time collectors
   instead of being pushed per event.
3. **Deterministic output.**  ``snapshot()`` and the exporters in
   :mod:`repro.obs.export` sort every key, so two identical runs
   produce byte-identical artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..sim import Environment
from .spans import SpanHandle, SpanLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.trace import TraceRecord

__all__ = ["Histogram", "InstantEvent", "OpRecord", "ProtoEvent", "Recorder"]


@dataclass
class Histogram:
    """Aggregate of one observed quantity, with exact percentiles.

    Values are retained (simulation runs are bounded, and exact
    quantiles beat approximate sketches for regression gating), so
    :meth:`stats` can report true nearest-rank p50/p95/p99.  The
    streaming min/max/total are still maintained incrementally to keep
    :meth:`add` a few plain statements on the hot path.
    """

    count: int = 0
    total: float = 0.0
    vmin: Optional[float] = None
    vmax: Optional[float] = None
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.values.append(value)
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def percentile(self, q: float) -> Optional[float]:
        """Exact nearest-rank percentile (``q`` in [0, 100])."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def stats(self) -> Dict[str, Any]:
        if self.values:
            ordered = sorted(self.values)
            n = len(ordered)
            ranks = {q: ordered[max(1, -(-n * q // 100)) - 1] for q in (50, 95, 99)}
        else:
            ranks = {50: None, 95: None, 99: None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": (self.total / self.count) if self.count else None,
            "p50": ranks[50],
            "p95": ranks[95],
            "p99": ranks[99],
        }


@dataclass
class InstantEvent:
    """A point-in-time marker (a retransmit, a rail failure, …)."""

    t: float
    track: str
    name: str
    args: Dict[str, Any] = field(default_factory=dict)


#: (rank, mr_handle, offset, size) — one absolute byte interval of a
#: registered memory region, as read or written by an operation.
MrInterval = "Tuple[int, int, int, int]"


@dataclass(slots=True)
class OpRecord:
    """Op-level metadata for one posted transfer fragment (unrverify).

    Where :class:`~repro.netsim.trace.TraceRecord` captures the *wire*
    view (which fragment crossed which rail when), an ``OpRecord``
    captures the *protocol* view: which MR interval the fragment reads
    and writes, which signal ids it notifies and with which idempotence
    tokens.  ``seq`` is a recorder-wide monotone sequence number (see
    :meth:`Recorder.next_seq`) giving a total order consistent with
    execution order across the ``ops`` and ``protocol`` streams;
    ``deliver_seq``/``deliver_time`` are stamped at first delivery
    (retransmit and duplicate deliveries do not restamp).
    """

    seq: int
    op_id: int
    kind: str            # 'put' | 'get' | 'ctrl'
    lane: str            # 'rma' | 'fallback' | 'ctrl'
    src_rank: int
    dst_rank: int
    #: rank whose memory the delivery lands in (PUT: dst, GET: src).
    deliver_rank: int
    nbytes: int
    post_time: float
    rail: int = 0
    frag_index: int = 0
    #: MR interval written on delivery ((rank, mr, offset, size)).
    write: Any = None
    #: MR interval read at post time.
    read: Any = None
    rsid: Any = None
    lsid: Any = None
    #: node index hosting the remote (``rsid``/``ctrl_sid``) and local
    #: (``lsid``) signal — the signal-table coordinates the HB builder
    #: matches ``add`` events against.
    rnode: Any = None
    lnode: Any = None
    rtok: Any = None
    ltok: Any = None
    ctrl_sid: Any = None
    #: ctrl payload tag (``send_ctl``), for matching ``ctrl_recv`` events.
    tag: Any = None
    deliver_time: Any = None
    deliver_seq: Any = None


@dataclass(slots=True)
class ProtoEvent:
    """One notification-protocol event (unrverify).

    Kinds: ``add`` (an MMAS counter add applied — or suppressed as a
    duplicate — at ``(node, sid)``), ``wait`` (a ``sig_wait`` completed;
    ``t0`` is when the wait began), ``reset``, ``sig_init``,
    ``sig_free``, ``ctrl_recv`` (a ``recv_ctl`` resumed; ``peer``/
    ``tag`` identify the matched sender) and ``stray_add`` (an add
    targeting an unregistered sid).
    """

    seq: int
    kind: str
    t: float
    rank: int
    node: int = -1
    sid: int = -1
    addend: int = 0
    token: Any = None
    applied: bool = True
    triggered: bool = False
    num_event: int = 0
    t0: float = 0.0
    peer: int = -1
    tag: Any = None


class Recorder:
    """One process-wide registry of counters, gauges, histograms,
    instant events, spans and NIC transfer records.

    Attach with :meth:`attach` (idempotent per cluster) or implicitly
    via ``Unr(..., observe=True)`` / ``UNR_OBSERVE=1`` or
    ``MessageTrace.attach``.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[InstantEvent] = []
        self.spans = SpanLog(env)
        #: NIC transfer log (:class:`~repro.netsim.trace.TraceRecord`),
        #: appended by :mod:`repro.obs.instrument`;
        #: :class:`~repro.netsim.trace.MessageTrace` is a view over it.
        self.transfers: List["TraceRecord"] = []
        #: op-level protocol metadata (unrverify layer 1): one
        #: :class:`OpRecord` per posted transfer fragment, and one
        #: :class:`ProtoEvent` per notification-protocol action.
        #: Deliberately *not* surfaced in :meth:`snapshot` — the bench
        #: artifacts stay byte-stable across this addition.
        self.ops: List[OpRecord] = []
        self.protocol: List[ProtoEvent] = []
        self._seq = 0
        self._collectors: List[Callable[[], Dict[str, float]]] = []
        self._sim_events = 0
        self._sim_heap_max = 0

    # -- attach ------------------------------------------------------------
    @classmethod
    def attach(cls, cluster: Any, recorder: Optional["Recorder"] = None) -> "Recorder":
        """Arm observation on ``cluster`` (idempotent).

        The first attach wraps every NIC's post methods (outermost, so a
        :class:`~repro.netsim.faults.FaultInjector` attached earlier
        stays innermost and the recorder sees post-fault delivery
        times), hooks the sim kernel's step counter, registers the
        pull-collectors, and publishes the recorder as ``cluster.obs``.
        Subsequent attaches return the existing recorder — a transfer is
        recorded exactly once no matter how many observers exist.
        """
        existing = getattr(cluster, "obs", None)
        if existing is not None:
            if recorder is not None and recorder is not existing:
                raise ValueError(
                    "cluster already has a recorder attached; cannot attach another"
                )
            return existing
        rec = recorder if recorder is not None else cls(cluster.env)
        cluster.obs = rec
        cluster.env.obs = rec
        from .instrument import instrument_cluster

        instrument_cluster(rec, cluster)
        return rec

    # -- metrics -----------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the running maximum of ``value`` in gauge ``name``."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.add(value)

    # -- events & spans ----------------------------------------------------
    def event(self, name: str, track: str = "events", **args: Any) -> None:
        """Record an instant marker at the current simulated time."""
        self.events.append(InstantEvent(t=self.env.now, track=track, name=name, args=args))

    def span(self, track: str, name: str, cat: str = "span", **args: Any) -> SpanHandle:
        """Open a span on ``track``; close with ``.end()`` or ``with``."""
        return self.spans.begin(track, name, cat=cat, **args)

    def complete_span(
        self, track: str, name: str, t0: float, t1: float,
        cat: str = "span", **args: Any,
    ) -> None:
        """Record a span with known bounds (retroactive)."""
        self.spans.add_complete(track, name, t0, t1, cat=cat, **args)

    # -- op / protocol streams (unrverify) ---------------------------------
    def next_seq(self) -> int:
        """Recorder-wide monotone sequence number.

        Stamped on every :class:`OpRecord` / :class:`ProtoEvent` (and on
        delivery), giving one total order consistent with execution
        order across both streams — the backbone of the happens-before
        graph in :mod:`repro.analysis.verify`.
        """
        self._seq += 1
        return self._seq

    def record_op(self, **kw: Any) -> "OpRecord":
        """Append one :class:`OpRecord` (stamped with the next seq)."""
        rec = OpRecord(seq=self.next_seq(), **kw)
        self.ops.append(rec)
        return rec

    def record_proto(self, kind: str, **kw: Any) -> "ProtoEvent":
        """Append one :class:`ProtoEvent` at the current simulated time."""
        ev = ProtoEvent(seq=self.next_seq(), kind=kind, t=self.env.now, **kw)
        self.protocol.append(ev)
        return ev

    # -- sim-kernel hook (hot path: two plain statements) ------------------
    def on_sim_step(self, heap_depth: int) -> None:
        """Called by ``Environment.step`` for every dispatched event."""
        self._sim_events += 1
        if heap_depth > self._sim_heap_max:
            self._sim_heap_max = heap_depth

    # -- collectors & snapshot ---------------------------------------------
    def add_collector(self, fn: Callable[[], Dict[str, float]]) -> None:
        """Register a pull-collector merged into ``snapshot()`` counters."""
        self._collectors.append(fn)

    def snapshot(self) -> Dict[str, Any]:
        """One deterministic dict of everything recorded so far.

        Collector outputs are summed into the counters (a collector runs
        at snapshot time and costs the hot path nothing); all keys are
        sorted so the dict — and anything serialized from it — is stable
        across identical runs.
        """
        counters: Dict[str, float] = dict(self.counters)
        counters["sim.events"] = self._sim_events
        for collect in self._collectors:
            for key, value in collect().items():
                counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        gauges["sim.heap_depth_max"] = self._sim_heap_max
        return {
            "t_end": self.env.now,
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": {k: self.histograms[k].stats() for k in sorted(self.histograms)},
            "n_events": len(self.events),
            "n_spans": len(self.spans),
            "n_transfers": len(self.transfers),
        }

    def __repr__(self) -> str:
        return (
            f"<Recorder t={self.env.now:.6g} transfers={len(self.transfers)} "
            f"spans={len(self.spans)} events={len(self.events)}>"
        )

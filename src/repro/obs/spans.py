"""Span log: nested begin/end intervals on the simulated clock.

Spans model *durations* (a collective phase, a signal wait, a plan
replay) the way Chrome's ``trace_event`` format does: each span lives on
a named *track* (one per rank, plus auxiliary tracks), nests under the
innermost span still open on that track, and is timestamped exclusively
with ``env.now`` — never a wall clock (unrlint rule UNR006).

The log is append-only and never touches the event heap, so arming it
cannot move a single simulation event (the passive guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim import Environment

__all__ = ["Span", "SpanHandle", "SpanLog"]


@dataclass
class Span:
    """One recorded interval on a track."""

    index: int
    track: str
    name: str
    cat: str
    t0: float
    t1: Optional[float] = None
    parent: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        if self.t1 is None:
            return 0.0
        return self.t1 - self.t0


class SpanHandle:
    """Returned by :meth:`SpanLog.begin`; close via :meth:`end` or ``with``."""

    __slots__ = ("_log", "index")

    def __init__(self, log: "SpanLog", index: int) -> None:
        self._log = log
        self.index = index

    def end(self, **args: Any) -> None:
        self._log.end(self, **args)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self._log.end(self)


class SpanLog:
    """All spans of one recorder, with per-track nesting stacks."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.spans: List[Span] = []
        self._open: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording ---------------------------------------------------------
    def begin(self, track: str, name: str, cat: str = "span", **args: Any) -> SpanHandle:
        stack = self._open.setdefault(track, [])
        parent = stack[-1] if stack else None
        span = Span(
            index=len(self.spans), track=track, name=name, cat=cat,
            t0=self.env.now, parent=parent, args=dict(args),
        )
        self.spans.append(span)
        stack.append(span.index)
        return SpanHandle(self, span.index)

    def end(self, handle: SpanHandle, **args: Any) -> None:
        """Close the span at the current simulated time (idempotent)."""
        span = self.spans[handle.index]
        if span.t1 is not None:
            return
        span.t1 = self.env.now
        if args:
            span.args.update(args)
        stack = self._open.get(span.track)
        if stack and handle.index in stack:
            stack.remove(handle.index)

    def add_complete(
        self, track: str, name: str, t0: float, t1: float,
        cat: str = "span", **args: Any,
    ) -> Span:
        """Record a span whose bounds are already known (retroactive —
        e.g. plan *build* time is only known once the plan first starts)."""
        span = Span(
            index=len(self.spans), track=track, name=name, cat=cat,
            t0=t0, t1=t1, parent=None, args=dict(args),
        )
        self.spans.append(span)
        return span

    # -- queries -----------------------------------------------------------
    def tracks(self) -> List[str]:
        seen: Dict[str, bool] = {}
        for span in self.spans:
            seen[span.track] = True
        return sorted(seen)

    def roots(self, track: str) -> List[Span]:
        return [s for s in self.spans if s.track == track and s.parent is None]

    def children(self, index: int) -> List[Span]:
        return [s for s in self.spans if s.parent == index]

    def critical_path(self, track: str) -> List[Span]:
        """Dominant chain on ``track``: the longest root span, then the
        longest child at every level down to a leaf.

        Ties break toward the earlier span so the extraction is
        deterministic.  Open (never-ended) spans count as zero-length.
        """
        roots = self.roots(track)
        if not roots:
            return []
        path: List[Span] = []
        node: Optional[Span] = max(roots, key=lambda s: (s.duration, -s.index))
        while node is not None:
            path.append(node)
            kids = self.children(node.index)
            node = max(kids, key=lambda s: (s.duration, -s.index)) if kids else None
        return path

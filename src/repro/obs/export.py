"""Exporters: Perfetto ``trace_event`` JSON, text timeline, bench records.

Everything here is a pure function of a :class:`~repro.obs.Recorder` —
no wall-clock reads, no environment probing — and every serialization
sorts its keys, so two identical runs export **byte-identical**
artifacts (enforced by the golden test in ``tests/obs``).

* :func:`perfetto_json` / :func:`write_perfetto` — Chrome/Perfetto
  ``trace_event`` JSON: one pid, one tid per track, ``"X"`` complete
  events for spans and NIC transfers, ``"i"`` instants for markers,
  ``"M"`` metadata naming the tracks.  Load at https://ui.perfetto.dev
  or ``chrome://tracing``.
* :func:`text_timeline` — the merged transfer+marker text view that
  supersedes ``MessageTrace.timeline`` (which remains as a view).
* :func:`bench_record` / :func:`write_bench` — the machine-readable
  ``BENCH_obs.json`` record: snapshot, per-track critical paths and the
  transfer fingerprint.
* :func:`validate_trace` / :func:`validate_bench` — hand-rolled schema
  checks (no external jsonschema dependency) used by the CLI and CI.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..netsim.trace import render_timeline, transfer_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import Recorder

__all__ = [
    "to_trace_events",
    "perfetto_json",
    "write_perfetto",
    "text_timeline",
    "bench_record",
    "write_bench",
    "validate_trace",
    "validate_trace_file",
    "validate_bench",
    "validate_bench_file",
]

BENCH_SCHEMA = "repro.obs.bench/1"

_PID = 1


def _us(t: float) -> float:
    """Simulated seconds → microseconds, rounded for stable JSON text."""
    return round(t * 1e6, 3)


def _track_ids(
    recorder: "Recorder", profiler: Optional[Any] = None
) -> Dict[str, int]:
    """Deterministic track → tid assignment (sorted names, tids from 1)."""
    names: Dict[str, bool] = {}
    for span in recorder.spans.spans:
        names[span.track] = True
    for evt in recorder.events:
        names[evt.track] = True
    for rec in recorder.transfers:
        names[f"net.n{rec.src_node}.r{rec.src_rail}"] = True
    if profiler is not None:
        for track in profiler.counter_tracks():
            names[track] = True
    return {name: tid for tid, name in enumerate(sorted(names), start=1)}


def to_trace_events(
    recorder: "Recorder", profiler: Optional[Any] = None
) -> List[Dict[str, Any]]:
    """The recorder's contents as Chrome ``trace_event`` dicts.

    ``profiler`` (a :class:`repro.obs.profile.HostProfiler`) merges its
    per-layer host-time counter tracks (``"C"`` events keyed by the
    *simulated* timestamp of each sample) into the same pid, after the
    recorder's own tracks in tid order.
    """
    tids = _track_ids(recorder, profiler)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
            "args": {"name": "repro-sim"},
        }
    ]
    for name, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
                "args": {"name": name},
            }
        )

    body: List[Dict[str, Any]] = []
    for span in recorder.spans.spans:
        args = dict(span.args)
        if not span.closed:
            args["unfinished"] = True
        body.append(
            {
                "ph": "X", "name": span.name, "cat": span.cat,
                "pid": _PID, "tid": tids[span.track],
                "ts": _us(span.t0), "dur": _us(span.duration),
                "args": args,
            }
        )
    for rec in recorder.transfers:
        args: Dict[str, Any] = {"nbytes": rec.nbytes, "ordered": rec.ordered}
        if rec.deliver_time is None:
            dur = 0.0
            args["undelivered"] = True
        else:
            dur = rec.deliver_time - rec.post_time
        body.append(
            {
                "ph": "X", "cat": "net",
                "name": (
                    f"{rec.kind} {rec.nbytes}B "
                    f"n{rec.src_node}.{rec.src_rail}>n{rec.dst_node}.{rec.dst_rail}"
                ),
                "pid": _PID, "tid": tids[f"net.n{rec.src_node}.r{rec.src_rail}"],
                "ts": _us(rec.post_time), "dur": _us(dur),
                "args": args,
            }
        )
    for evt in recorder.events:
        body.append(
            {
                "ph": "i", "s": "t", "name": evt.name, "cat": "marker",
                "pid": _PID, "tid": tids[evt.track],
                "ts": _us(evt.t), "args": dict(evt.args),
            }
        )
    if profiler is not None:
        body.extend(profiler.trace_events(tids))
    body.sort(key=lambda ev: (ev["ts"], ev["tid"]))
    return events + body


def perfetto_json(recorder: "Recorder", profiler: Optional[Any] = None) -> str:
    """Byte-stable Perfetto JSON (sorted keys, fixed separators).

    With ``profiler`` the document additionally carries unrprof's
    counter tracks; the recorder-derived events stay byte-identical
    (host-time values live only on the profiler's own tracks).
    """
    doc = {
        "traceEvents": to_trace_events(recorder, profiler),
        "displayTimeUnit": "ms",
        "otherData": {"snapshot": recorder.snapshot()},
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_perfetto(
    recorder: "Recorder", path: str, profiler: Optional[Any] = None
) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(perfetto_json(recorder, profiler))
    return path


# -- text timeline ------------------------------------------------------------

def text_timeline(recorder: "Recorder", limit: int = 40, min_bytes: int = 0) -> str:
    """Merged text view: NIC transfers interleaved with instant markers,
    ordered by simulated time (supersedes ``MessageTrace.timeline``)."""
    rows: List[Any] = []
    for order, rec in enumerate(recorder.transfers):
        if rec.nbytes < min_bytes:
            continue
        rows.append((rec.post_time, 0, order, render_timeline([rec])))
    for order, evt in enumerate(recorder.events):
        detail = " ".join(f"{k}={evt.args[k]}" for k in sorted(evt.args))
        rows.append(
            (
                evt.t, 1, order,
                f"{evt.t * 1e6:9.2f} !            us  {evt.name} [{evt.track}]"
                + (f"  {detail}" if detail else ""),
            )
        )
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    lines = [row[3] for row in rows[:limit]]
    if len(rows) > limit:
        lines.append(f"... ({len(rows)} rows total)")
    return "\n".join(lines)


# -- bench record -------------------------------------------------------------

def bench_record(
    recorder: "Recorder",
    *,
    name: str,
    platform: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Machine-readable benchmark record (the ``BENCH_obs.json`` body)."""
    critical_paths: Dict[str, List[Dict[str, Any]]] = {}
    for track in recorder.spans.tracks():
        path = recorder.spans.critical_path(track)
        if path:
            critical_paths[track] = [
                {"name": s.name, "cat": s.cat, "t0_us": _us(s.t0), "dur_us": _us(s.duration)}
                for s in path
            ]
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "platform": platform,
        "params": dict(params or {}),
        "snapshot": recorder.snapshot(),
        "critical_paths": critical_paths,
        "transfer_fingerprint": transfer_fingerprint(recorder.transfers),
    }


def write_bench(record: Dict[str, Any], path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True, indent=2) + "\n")
    return path


# -- validation ---------------------------------------------------------------

def validate_trace(doc: Any) -> List[str]:
    """Schema-check a ``trace_event`` document; returns error strings."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["top-level value must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing/non-string name")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
        if ph in ("X", "i", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
        if ph == "M" and not isinstance(ev.get("args"), dict):
            errors.append(f"{where}: metadata event needs an args object")
    return errors


def validate_trace_file(path: str) -> None:
    """Load + validate a trace JSON file; raises ``ValueError`` on errors."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_trace(doc)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))


def validate_bench(record: Any) -> List[str]:
    """Schema-check a bench record; returns error strings."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["bench record must be an object"]
    if record.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema must be {BENCH_SCHEMA!r}, got {record.get('schema')!r}")
    if not isinstance(record.get("name"), str):
        errors.append("name must be a string")
    snap = record.get("snapshot")
    if not isinstance(snap, dict):
        errors.append("snapshot must be an object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(snap.get(section), dict):
                errors.append(f"snapshot.{section} must be an object")
    fp = record.get("transfer_fingerprint")
    if not (isinstance(fp, str) and len(fp) == 64):
        errors.append("transfer_fingerprint must be a sha256 hex digest")
    if not isinstance(record.get("critical_paths"), dict):
        errors.append("critical_paths must be an object")
    return errors


def validate_bench_file(path: str) -> None:
    """Load + validate a bench JSON file; raises ``ValueError`` on errors."""
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    errors = validate_bench(record)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))

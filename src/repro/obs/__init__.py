"""repro.obs — unified tracing, metrics & profiling for the simulation.

One :class:`Recorder` per cluster collects counters, gauges, histograms,
instant events, spans and NIC transfer records, all timestamped with
simulated time (``env.now``).  Recording is passive: arming a recorder
never changes what the simulation does, only what gets written down —
``MessageTrace.fingerprint()`` is identical with observation on or off.

Arm via ``Unr(..., observe=True)``, the ``UNR_OBSERVE=1`` environment
variable, ``Recorder.attach(cluster)``, or the ``repro trace`` CLI.
Export with :func:`write_perfetto` (Chrome/Perfetto ``trace_event``
JSON), :func:`text_timeline`, or :func:`bench_record` /
:func:`write_bench` (``BENCH_obs.json``).  See ``docs/observability.md``.

Host-time profiling lives in :mod:`repro.obs.profile` (``unrprof``):
:class:`HostProfiler` is the repo's one sanctioned wall-clock consumer
(unrlint UNR012) and attributes host CPU time per event kind and layer
without perturbing the schedule.  See ``docs/profiling.md``.
"""

from .export import (
    bench_record,
    perfetto_json,
    text_timeline,
    to_trace_events,
    validate_bench,
    validate_bench_file,
    validate_trace,
    validate_trace_file,
    write_bench,
    write_perfetto,
)
from .profile import HostProfiler, host_clock_ns, peak_rss_kb
from .recorder import Histogram, InstantEvent, OpRecord, ProtoEvent, Recorder
from .spans import Span, SpanHandle, SpanLog

__all__ = [
    "Recorder",
    "HostProfiler",
    "host_clock_ns",
    "peak_rss_kb",
    "Histogram",
    "InstantEvent",
    "OpRecord",
    "ProtoEvent",
    "Span",
    "SpanHandle",
    "SpanLog",
    "to_trace_events",
    "perfetto_json",
    "write_perfetto",
    "text_timeline",
    "bench_record",
    "write_bench",
    "validate_trace",
    "validate_trace_file",
    "validate_bench",
    "validate_bench_file",
]

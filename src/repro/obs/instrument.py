"""Cluster instrumentation: NIC wrapping + snapshot-time collectors.

Installed once per cluster by :meth:`Recorder.attach`.  Two mechanisms:

* **push** — each NIC's ``post_put``/``post_get`` is replaced with a
  recording wrapper (the historical ``MessageTrace`` interception
  idiom).  A :class:`~repro.netsim.faults.FaultInjector` attached
  *earlier* stays innermost, so the recorder observes post-fault
  delivery times and dropped fragments keep ``deliver_time=None``.
* **pull** — per-rail NIC counters, CQ high-water marks and
  fault-injector tallies are read only at ``snapshot()`` time by
  collectors, so the fabric hot path carries no extra bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..netsim.nic import Nic
from ..netsim.trace import TraceRecord
from ..units import US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import Recorder

__all__ = ["instrument_cluster"]


def instrument_cluster(recorder: "Recorder", cluster: Any) -> None:
    """Wrap every NIC of ``cluster`` and register the pull-collectors.

    On a lazy cluster the wrapping rides the node-materialization hook,
    so attaching a Recorder never forces the full node graph into
    existence (the 1728-node scaling runs depend on this).
    """

    def wrap_node(node: Any) -> None:
        for nic in node.nics:
            _wrap_nic(recorder, nic)

    add_hook = getattr(cluster, "add_node_hook", None)
    if add_hook is not None:
        add_hook(wrap_node)
    else:  # plain/eager cluster stand-ins (tests)
        for node in cluster.nodes:
            wrap_node(node)
    recorder.add_collector(lambda: _collect_net(cluster))
    recorder.add_collector(lambda: _collect_faults(cluster))
    recorder.add_collector(_collect_pool)


def _wrap_nic(recorder: "Recorder", nic: Nic) -> None:
    orig_put = nic.post_put
    orig_get = nic.post_get
    transfers = recorder.transfers

    def post_put(dst: Any, nbytes: int, *, on_deliver: Any = None,
                 ordered: bool = False, **kw: Any) -> Any:
        rec = TraceRecord(
            kind="put",
            src_node=nic.node.index, src_rail=nic.index,
            dst_node=dst.node.index, dst_rail=dst.index,
            nbytes=nbytes, post_time=nic.env.now, ordered=ordered,
        )
        transfers.append(rec)
        recorder.count("net.puts")

        def deliver(payload: Any) -> None:
            rec.deliver_time = nic.env.now
            recorder.observe(
                "net.frag_latency_us", (rec.deliver_time - rec.post_time) / US
            )
            if on_deliver is not None:
                on_deliver(payload)

        return orig_put(dst, nbytes, on_deliver=deliver, ordered=ordered, **kw)

    def post_get(dst: Any, nbytes: int, *, on_deliver: Any = None, **kw: Any) -> Any:
        rec = TraceRecord(
            kind="get",
            src_node=nic.node.index, src_rail=nic.index,
            dst_node=dst.node.index, dst_rail=dst.index,
            nbytes=nbytes, post_time=nic.env.now,
        )
        transfers.append(rec)
        recorder.count("net.gets")

        def deliver(payload: Any) -> None:
            rec.deliver_time = nic.env.now
            recorder.observe(
                "net.frag_latency_us", (rec.deliver_time - rec.post_time) / US
            )
            if on_deliver is not None:
                on_deliver(payload)

        return orig_get(dst, nbytes, on_deliver=deliver, **kw)

    nic.post_put = post_put  # type: ignore[method-assign]
    nic.post_get = post_get  # type: ignore[method-assign]


def _collect_net(cluster: Any) -> Dict[str, float]:
    """Per-rail NIC utilisation and CQ depth/stall counters.

    Only materialized nodes are visited: an untouched node has no
    traffic, and iterating ``cluster.nodes`` here would defeat the lazy
    construction the scaling runs rely on.
    """
    out: Dict[str, float] = {}
    materialized = getattr(cluster, "materialized_nodes", None)
    nodes = materialized() if materialized is not None else cluster.nodes
    for node in nodes:
        for nic in node.nics:
            pre = f"net.n{node.index}.r{nic.index}."
            out[pre + "tx_msgs"] = nic.tx_msgs
            out[pre + "tx_bytes"] = nic.tx_bytes
            out[pre + "rx_msgs"] = nic.rx_msgs
            out[pre + "rx_bytes"] = nic.rx_bytes
            out[pre + "cq_pushes"] = nic.cq.n_pushed
            out[pre + "cq_high_water"] = nic.cq.high_water
            out[pre + "cq_overflow_stalls"] = nic.cq.n_overflow_stalls
            out[pre + "cq_stall_us"] = nic.cq.stall_time / US
    return out


def _collect_pool() -> Dict[str, float]:
    """Completion-record pool accounting (``net.record_pool.*``).

    The pool is process-global (see
    :func:`repro.netsim.nic.configure_record_pool`), so the snapshot is
    cluster-independent; hit/miss/dropped counts tell whether the cap
    fits the run's completion-record working set."""
    from ..netsim.nic import record_pool_stats

    return {
        f"net.record_pool.{key}": float(value)
        for key, value in record_pool_stats().items()
    }


def _collect_faults(cluster: Any) -> Dict[str, float]:
    """Fault-injector tallies (drops, dups, rail kills, …), summed when
    several injectors are attached."""
    out: Dict[str, float] = {}
    for injector in getattr(cluster, "fault_injectors", ()):
        for key in sorted(injector.stats):
            name = f"fault.{key}"
            out[name] = out.get(name, 0) + injector.stats[key]
    return out

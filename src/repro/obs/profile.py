"""unrprof: the host-time self-profiler (``repro profile``).

Everything else in :mod:`repro.obs` is deliberately blind to the wall
clock: the :class:`~repro.obs.recorder.Recorder` stamps with ``env.now``
only, so an armed run stays wire-fingerprint-identical to a disarmed
one.  That guarantee leaves a hole — we can count *simulated events per
op*, but we have zero visibility into where **host CPU time** goes
inside the simulator itself, which is exactly the signal the
calendar-queue / 1728-node scaling work needs.

This module is the one sanctioned wall-clock user in the repository
(statically enforced: unrlint rule UNR012 flags ``time.*`` anywhere
outside ``obs/profile.py``).  The profiler is architecturally separate
from the Recorder:

* **It never feeds the schedule.**  ``HostProfiler`` reads
  ``time.perf_counter_ns`` and ``env.now``; it never schedules events,
  never draws RNG, never mutates simulation state.  A profiled run is
  therefore bit-identical on the wire to an unprofiled one (tested
  against the 16-entry golden fingerprint corpus).
* **Chained timestamps, zero gap.**  ``Environment.step`` calls
  :meth:`HostProfiler.on_event` once per dispatched event.  The hook
  takes a single clock reading and attributes the interval since the
  *previous* reading to the previous event — so every nanosecond of the
  measured window lands on some event kind, including the profiler's
  own bookkeeping (the accounting identity ``sum(total_ns) ≈ wall_ns``
  holds by construction; coverage is typically >97%).
* **Self vs total.**  :class:`~repro.core.engine.ProgressEngine` wraps
  handler dispatch in :meth:`dispatch_begin`/:meth:`dispatch_end`;
  nested dispatch time is subtracted from the enclosing event's
  ``self_ns`` and attributed per completion-record kind.
* **Capture live, account later.**  The per-event hot path is one
  clock read plus one buffer append; classification, interval
  accounting, sampling and the counter timeline replay from the buffer
  at drain time (window exit / snapshot / periodic cap), outside the
  measured workload.  Per-layer aggregates (sim kernel / netsim NIC /
  engine dispatch / obs / mpi / workload) are a pure function of the
  per-kind stats and are rebuilt lazily at snapshot / report time.
  Optional sampling mode folds self-time into collapsed-stack lines
  (``layer;kind[;dispatch:rkind] <ns>``) ready for flamegraph tooling.

Arm with :meth:`HostProfiler.attach` **before** constructing ``Unr``
(so progress engines see it), wrap the measured region in
:meth:`window`, then export via :meth:`snapshot`, :meth:`report`,
:meth:`collapsed` or the Perfetto counter tracks
(:func:`repro.obs.export.perfetto_json` with ``profiler=``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time  # sanctioned: the ONLY wall-clock import in the repo (UNR012)
from contextlib import contextmanager
from types import CodeType
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..sim.core import Deferred as _Deferred

__all__ = [
    "HostProfiler",
    "host_clock_ns",
    "peak_rss_kb",
    "run_meta",
]

_clock_ns = time.perf_counter_ns


def host_clock_ns() -> int:
    """Monotonic host clock in nanoseconds.

    The chokepoint bench code uses to time wall-clock spans (overhead
    baselines, trend timestamps) without importing ``time`` itself —
    unrlint UNR012 reserves ``time.*`` for this module.
    """
    return _clock_ns()


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process, in kilobytes.

    Read from ``resource.getrusage`` (``ru_maxrss`` is KB on Linux, and
    converted from bytes on macOS); ``None`` on platforms without the
    ``resource`` module.  Like the host clock this is host-side
    telemetry only — it rides in bench records (``peak_rss_kb``) and
    never feeds the simulation.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        rss //= 1024
    return int(rss)


def run_meta() -> Dict[str, Any]:
    """Host/run identity block embedded in ``BENCH_profile.json``.

    ``repro bench-report --history`` keys runs by ``git_sha`` +
    ``platform``; everything here is best-effort (a detached tarball
    build reports ``git_sha="unknown"``).
    """
    sha = "unknown"
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            sha = out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "git_sha": sha,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "unix_time": int(time.time()),
    }


#: package component -> attribution layer.  ``core`` is the transfer/
#: progress engine, ``obs`` the observability layer itself; workload
#: components (apps, benches, examples) fold into one bucket.
_LAYER_BY_COMPONENT = {
    "sim": "sim",
    "netsim": "netsim",
    "core": "engine",
    "obs": "obs",
    "mpi": "mpi",
    "interconnect": "engine",
    "powerllel": "workload",
    "collectives": "workload",
    "bench": "workload",
    "examples": "workload",
    "tests": "workload",
}


def _layer_of_module(module: str) -> str:
    for part in module.split("."):
        layer = _LAYER_BY_COMPONENT.get(part)
        if layer is not None:
            return layer
    return "other"


def _layer_of_path(filename: str) -> str:
    for part in filename.replace(os.sep, "/").split("/"):
        base = part[:-3] if part.endswith(".py") else part
        layer = _LAYER_BY_COMPONENT.get(base)
        if layer is not None:
            return layer
    return "other"


class _Stat:
    """One accumulator: event/dispatch kind or layer aggregate.

    Self time is derived (``total_ns - child_ns``) rather than stored:
    nested engine-dispatch frames are rare next to sim events, so
    :meth:`HostProfiler.dispatch_end` charges ``child_ns`` directly to
    the enclosing stat and the per-event hot path carries no self-time
    arithmetic at all.
    """

    __slots__ = ("kind", "layer", "count", "total_ns", "child_ns", "max_ns",
                 "stack_key")

    def __init__(self, kind: str, layer: str) -> None:
        self.kind = kind
        self.layer = layer
        self.count = 0
        self.total_ns = 0
        self.child_ns = 0
        self.max_ns = 0
        #: precomputed collapsed-stack frame ("layer;kind").
        self.stack_key = f"{layer};{kind}"

    @property
    def self_ns(self) -> int:
        return self.total_ns - self.child_ns

    def as_dict(self) -> Dict[str, Any]:
        return {
            "layer": self.layer,
            "count": self.count,
            "total_ns": self.total_ns,
            "self_ns": self.total_ns - self.child_ns,
            "max_ns": self.max_ns,
        }


#: control entries in the deferred-work buffer (see HostProfiler._buf):
#: open a synthetic host:setup frame / close the pending interval at the
#: entry's host timestamp.
_SETUP = object()
_FLUSH = object()


class HostProfiler:
    """Opt-in host-clock profiler for the simulation process.

    Parameters
    ----------
    sample_every:
        ``0`` (default) disables sampling; ``N`` folds every Nth
        occurrence of each event kind into the collapsed-stack table,
        weighted by ``self_ns * N`` (an unbiased estimate of the kind's
        self time at 1/N the bookkeeping cost).  ``1`` samples every
        event exactly.
    counter_every:
        Append a Perfetto counter-track sample (cumulative per-layer
        host ms keyed by the *simulated* timestamp) every N dispatched
        events.  ``0`` disables the timeline.
    """

    # Slotted, and the per-event work is a clock read plus one list
    # append: every timestamp is captured live, but classification and
    # accounting replay from the buffer at drain time (window exit /
    # snapshot / periodic cap), OUTSIDE the measured workload.  The 10%
    # overhead gate on the engine micro-benchmark is what forces this
    # shape — attribute walks and dict updates per event cost more than
    # the attribution is worth while the workload is running.
    __slots__ = (
        "env", "events", "dispatch", "wall_ns",
        "_sample_every", "_counter_every", "_counter_left", "_samples",
        "counter_timeline", "_buf", "_append", "_pending", "_pending_t0",
        "_child_ns", "_window_t0", "_fn_memo", "_code_memo",
        "per_event_overhead_ns",
    )

    #: drain the buffer when it reaches this many entries (checked at
    #: engine-dispatch cadence, see :meth:`dispatch_end`) so memory
    #: stays bounded on long windows.  A window with no engine activity
    #: buffers ~80 B/event until the next flush point instead.
    _DRAIN_CAP = 32768

    def __init__(self, *, sample_every: int = 0, counter_every: int = 256) -> None:
        self.env: Optional[Any] = None
        self.events: Dict[str, _Stat] = {}
        self.dispatch: Dict[str, _Stat] = {}
        self.wall_ns = 0
        self._sample_every = int(sample_every)
        self._counter_every = int(counter_every)
        #: countdown to the next counter-track sample (-1 = disabled);
        #: decremented per event at replay time, never on the hot path.
        self._counter_left = self._counter_every or -1
        self._samples: Dict[str, int] = {}
        #: (simulated seconds, {layer: cumulative total_ns}) timeline.
        self.counter_timeline: List[Tuple[float, Dict[str, int]]] = []
        #: deferred-work buffer: (host_ns, event_class, key, sim_now)
        #: per sim event — key is a Deferred callback's ``__code__`` or
        #: the captured callbacks list — (host_ns, kind_str, t0_ns, 0.0)
        #: per engine dispatch frame, plus _SETUP/_FLUSH control
        #: entries.  Replayed by :meth:`_drain`; never retains event
        #: objects (see :meth:`on_event`).
        self._buf: List[Tuple[Any, Any, Any, float]] = []
        #: the buffer's bound ``append`` — one slot load on the hot
        #: path instead of an attribute walk; rekept by :meth:`_drain`.
        self._append = self._buf.append
        # chained-timestamp replay state (carried across drains)
        self._pending: Optional[_Stat] = None
        self._pending_t0 = 0
        self._child_ns = 0
        self._window_t0: Optional[int] = None
        # classification memos (callable / generator code object keyed)
        self._fn_memo: Dict[Any, _Stat] = {}
        self._code_memo: Dict[Any, _Stat] = {}
        self.per_event_overhead_ns = self._calibrate()

    # -- attach ------------------------------------------------------------
    @classmethod
    def attach(cls, cluster: Any,
               profiler: Optional["HostProfiler"] = None) -> "HostProfiler":
        """Arm host profiling on ``cluster`` (idempotent per cluster).

        Must run **before** ``Unr(...)`` so progress engines pick the
        profiler up at construction.  One profiler may be attached to
        several clusters over its life (e.g. the engine micro-benchmark
        runs two jobs); accumulators keep growing across them.
        """
        existing = getattr(cluster, "prof", None)
        if existing is not None:
            if profiler is not None and profiler is not existing:
                raise ValueError(
                    "cluster already has a profiler attached; cannot attach another"
                )
            return existing
        prof = profiler if profiler is not None else cls()
        cluster.prof = prof
        prof.bind(cluster.env)
        return prof

    def bind(self, env: Any) -> None:
        """Point the profiler at ``env`` (installs the step hook)."""
        self._mark_flush()
        self.env = env
        env.profile = self
        # Inside a measured window, setup between the bind and the first
        # event (job construction, engine wiring) is real host time —
        # open a synthetic frame so the chain stays gap-free.  Markers
        # only; no drain here, so mid-window binds cost two appends.
        if self._window_t0 is not None:
            self._buf.append((_clock_ns(), _SETUP, None, 0.0))

    def disarm(self) -> None:
        """Detach from the current environment (accumulators survive)."""
        self._flush_pending()
        if self.env is not None and getattr(self.env, "profile", None) is self:
            self.env.profile = None

    # -- measured window ---------------------------------------------------
    @contextmanager
    def window(self) -> Iterator["HostProfiler"]:
        """Bracket the measured region; adds its span to :attr:`wall_ns`.

        Coverage (attributed / wall) is reported against the union of
        these windows, so run the workload — and nothing else — inside.
        """
        t0 = _clock_ns()
        self._window_t0 = t0
        # Everything from here to the first sim event (platform tables,
        # job construction, Unr wiring) lands on the synthetic
        # ``host:setup`` kind, so Σ self_ns tracks wall_ns gap-free.
        self._buf.append((t0, _SETUP, None, 0.0))
        try:
            yield self
        finally:
            # Close the window BEFORE replaying the buffer: the drain is
            # profiler bookkeeping outside the measured span, so it must
            # inflate neither wall_ns nor any event's interval.
            t1 = _clock_ns()
            self._buf.append((t1, _FLUSH, None, 0.0))
            self.wall_ns += t1 - t0
            self._window_t0 = None
            self._drain()

    def _mark_flush(self) -> None:
        """Queue a close of the pending interval at the current time."""
        if self._pending is not None or self._buf:
            self._buf.append((_clock_ns(), _FLUSH, None, 0.0))

    def _flush_pending(self) -> None:
        self._mark_flush()
        self._drain()

    # -- the hot path ------------------------------------------------------
    def on_event(self, event: Any, _clock: Any = _clock_ns,
                 _deferred: Any = _Deferred) -> None:
        """Called by ``Environment.step`` once per dispatched event.

        One clock read and one buffer append: the timestamp closes the
        previous event's interval and opens this one *at replay time*
        (chained attribution — bookkeeping for event *i* lands inside
        event *i+1*'s interval).  The overhead gate holds the profiled
        engine micro-benchmark to <=10%, which is why nothing else
        happens per event — no counters, no dict updates (``_clock``
        and ``_deferred`` are bound as default arguments to skip the
        module-global lookups; the counter-timeline countdown replays
        from the buffered sim timestamps at drain time).

        The entry must NOT retain the event object: events are the
        allocator's hottest recycled blocks, and parking thousands of
        them in the buffer forces every new event onto cold memory — a
        measured ~1 us/event of cache misses, triple the cost of the
        append itself.  So the entry carries only the event's *class*
        plus a classification key that is already long-lived: the
        ``__code__`` of a Deferred's callback (the closure itself is
        fresh per post), or the callbacks list for everything else
        (its entries are bound methods of long-lived Processes; the
        list must be captured here anyway because ``step`` nulls
        ``event.callbacks`` right after this hook).
        """
        cls = event.__class__
        if cls is _deferred:
            try:
                key: Any = event._fn.__code__
            except AttributeError:  # C-level / __call__ object
                key = event._fn
        else:
            key = event.callbacks
        self._append((_clock(), cls, key, event.env._now))

    # -- engine dispatch hook ----------------------------------------------
    def dispatch_begin(self) -> int:
        """Start a nested engine-dispatch frame; returns its t0 token."""
        return _clock_ns()

    def dispatch_end(self, kind: str, t0: int) -> None:
        """Close the frame opened by :meth:`dispatch_begin`.

        At replay the elapsed time is charged to ``dispatch[kind]`` and
        subtracted from the enclosing sim event's self time.  The
        buffer cap is enforced here rather than per event — dispatch
        frames recur throughout every Unr-driven workload, and a length
        check at dispatch cadence is invisible next to the per-event
        budget.
        """
        self._append((_clock_ns(), kind, t0, 0.0))
        if len(self._buf) >= self._DRAIN_CAP:
            # Bound memory on long windows.  The replay lands inside
            # the then-pending interval — same place the old inline
            # bookkeeping was measured, so coverage is unaffected.
            self._drain()

    # -- buffer replay ------------------------------------------------------
    def _drain(self) -> None:
        """Replay buffered entries into the accumulators.

        Runs at window exit, snapshot/report/disarm, and when the
        buffer hits :attr:`_DRAIN_CAP` — everything the old inline hot
        path did (interval accounting, classification, sampling, the
        counter timeline) happens here instead, against the timestamps
        captured live, so the attribution is identical but the workload
        only ever paid for the capture.
        """
        buf = self._buf
        if not buf:
            return
        self._buf = []
        self._append = self._buf.append
        pending = self._pending
        t_prev = self._pending_t0
        child = self._child_ns
        sample = self._sample_every
        cleft = self._counter_left
        for t, tag, extra, sim in buf:
            if tag.__class__ is str:  # engine dispatch frame (kind, t0)
                dt = t - extra
                child += dt
                if pending is not None:
                    pending.child_ns += dt
                st = self.dispatch.get(tag)
                if st is None:
                    st = self.dispatch[tag] = _Stat(f"dispatch:{tag}", "engine")
                st.count += 1
                st.total_ns += dt
                if dt > st.max_ns:
                    st.max_ns = dt
                if sample and st.count % sample == 0:
                    key = (f"{pending.stack_key};{st.kind}"
                           if pending is not None else f"engine;{st.kind}")
                    self._samples[key] = self._samples.get(key, 0) + dt * sample
                continue
            if pending is not None:  # close the previous interval at t
                dt = t - t_prev
                pending.count += 1
                pending.total_ns += dt
                if dt > pending.max_ns:
                    pending.max_ns = dt
                if sample and pending.count % sample == 0:
                    key = pending.stack_key
                    self._samples[key] = (self._samples.get(key, 0)
                                          + (dt - child) * sample)
            t_prev = t
            child = 0
            if tag is _SETUP:
                pending = self._stat_for("host:setup", "host")
            elif tag is _FLUSH:
                pending = None
            else:  # a sim event (class, key): open its interval
                pending = self._classify(tag, extra)
                # Counter-timeline countdown, replayed at the same
                # every-N-events cadence the hot path used to pay for;
                # ``sim`` is the event's simulated timestamp captured
                # at dispatch.
                cleft -= 1
                if not cleft:
                    cleft = self._counter_every
                    self.counter_timeline.append(
                        (sim, {k: s.total_ns
                               for k, s in self._layer_totals().items()})
                    )
        self._pending = pending
        self._pending_t0 = t_prev
        self._child_ns = child
        self._counter_left = cleft

    # -- classification (memoized off the hot path) ------------------------
    def _stat_for(self, kind: str, layer: str) -> _Stat:
        st = self.events.get(kind)
        if st is None:
            st = self.events[kind] = _Stat(kind, layer)
        return st

    def _layer_totals(self) -> Dict[str, _Stat]:
        """Per-layer aggregates folded from :attr:`events` on demand.

        The hot path only touches the per-kind stat; layer sums are a
        pure function of those, so they are rebuilt here (snapshot /
        report / counter-timeline sample) instead of being double-
        written on every event.  Dispatch stats stay out by design —
        their time is nested inside the sim events' ``total_ns``.
        """
        out: Dict[str, _Stat] = {}
        for st in self.events.values():
            agg = out.get(st.layer)
            if agg is None:
                agg = out[st.layer] = _Stat(st.layer, st.layer)
            agg.count += st.count
            agg.total_ns += st.total_ns
            agg.child_ns += st.child_ns
            if st.max_ns > agg.max_ns:
                agg.max_ns = st.max_ns
        return out

    def _stat_for_code(self, prefix: str, fkey: Any) -> _Stat:
        """Resolve a callable to its stat, keyed by ``__code__``.

        Deferred callbacks are often *fresh closures* (``Nic.post_put``
        builds one ``local_side`` per post), so memoizing on the
        function object would miss — and leak — once per post.  The
        shared code object identifies the source location exactly and
        lives for the life of the module.
        """
        code = fkey if type(fkey) is CodeType else getattr(fkey, "__code__", None)
        key = code if code is not None else fkey
        st = self._fn_memo.get(key)
        if st is None:
            if code is not None:
                qual = getattr(code, "co_qualname", code.co_name)
                layer = _layer_of_path(code.co_filename)
            else:
                qual = getattr(fkey, "__qualname__", repr(fkey))
                layer = _layer_of_module(getattr(fkey, "__module__", "") or "")
            st = self._stat_for(f"{prefix}:{qual}", layer)
            self._fn_memo[key] = st
        return st

    def _classify(self, cls: type, key: Any) -> _Stat:
        """Resolve a buffered ``(event class, key)`` entry to its stat.

        ``key`` is what :meth:`on_event` captured: a Deferred
        callback's ``__code__`` (or the raw callable), or the event's
        callbacks list — captured at dispatch time because
        ``Environment.step`` nulls ``event.callbacks`` right after the
        hook fires.
        """
        if cls is _Deferred:
            return self._stat_for_code("defer", key)
        # Timeout / Initialize / Process / Condition / plain Event: the
        # host time goes to whatever the first callback resumes — usually
        # a Process generator, whose *code object* names both the kind
        # and the layer the interval is spent in.
        cb = key[0] if key else None
        owner = getattr(cb, "__self__", None)
        gen = getattr(owner, "_generator", None)
        if gen is not None:
            code = getattr(gen, "gi_code", None)
            gkey = code if code is not None else getattr(owner, "name", "?")
            st = self._code_memo.get(gkey)
            if st is None:
                if code is not None:
                    qual = getattr(code, "co_qualname", code.co_name)
                    layer = _layer_of_path(code.co_filename)
                else:
                    qual, layer = str(gkey), "other"
                st = self._stat_for(f"proc:{qual}", layer)
                self._code_memo[gkey] = st
            return st
        if cb is not None:
            return self._stat_for_code("cb", getattr(cb, "__func__", cb))
        return self._stat_for(f"event:{cls.__name__}", "sim")

    # -- calibration --------------------------------------------------------
    @staticmethod
    def _calibrate(iters: int = 256) -> int:
        """Estimate the hot path's per-event cost (ns, clock + append)."""
        probe: List[Tuple[int, Any, Any, float]] = []
        append = probe.append
        t0 = _clock_ns()
        for _ in range(iters):
            append((_clock_ns(), None, None, 0.0))
        return max((_clock_ns() - t0) // iters, 1)

    # -- output -------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Dispatched sim events seen (derived, no hot-path counter).

        Every dispatched event opens exactly one interval, and every
        interval close increments its kind's count — so the dispatched
        total is the sum of the per-kind counts minus the synthetic
        ``host:setup`` frames, which are the only intervals not opened
        by a dispatched event.  The still-open pending interval is not
        yet counted; :meth:`snapshot` and :meth:`report` flush first.
        """
        total = sum(s.count for s in self.events.values())
        setup = self.events.get("host:setup")
        return total - setup.count if setup is not None else total

    def attributed_self_ns(self) -> int:
        """Σ self-time over event kinds + dispatch kinds (no double count)."""
        return (sum(s.self_ns for s in self.events.values())
                + sum(s.self_ns for s in self.dispatch.values()))

    def coverage(self) -> Optional[float]:
        """Attributed self time / measured window wall time (None = no window)."""
        if self.wall_ns <= 0:
            return None
        return self.attributed_self_ns() / self.wall_ns

    def snapshot(self) -> Dict[str, Any]:
        """Everything accumulated so far, keys sorted (JSON-ready)."""
        self._flush_pending()
        layers = self._layer_totals()
        return {
            "wall_ns": self.wall_ns,
            "n_events": self.n_events,
            "coverage": self.coverage(),
            "events": {k: self.events[k].as_dict() for k in sorted(self.events)},
            "layers": {k: layers[k].as_dict() for k in sorted(layers)},
            "dispatch": {k: self.dispatch[k].as_dict() for k in sorted(self.dispatch)},
            "overhead_est_ns": self.per_event_overhead_ns * self.n_events,
            "n_samples": len(self._samples),
        }

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame value``), flamegraph-ready.

        With sampling off this falls back to the exact per-kind self
        times, which is still a valid (single-level) flamegraph input.
        """
        if self._samples:
            table = self._samples
        else:
            table = {s.stack_key: s.self_ns for s in self.events.values()}
            for s in self.dispatch.values():
                table[f"engine;{s.kind}"] = s.self_ns
        return [f"{key} {value}" for key, value in sorted(table.items()) if value > 0]

    def write_collapsed(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.collapsed()) + "\n")
        return path

    def trace_events(self, tids: Dict[str, int]) -> List[Dict[str, Any]]:
        """Perfetto ``"C"`` counter events over the sampled timeline.

        ``tids`` maps counter track names (see :meth:`counter_tracks`)
        to thread ids — assigned by the exporter so profile counters
        merge cleanly into the recorder's trace.
        """
        out: List[Dict[str, Any]] = []
        for sim_t, by_layer in self.counter_timeline:
            ts = round(sim_t * 1e6, 3)
            for layer, cum_ns in sorted(by_layer.items()):
                track = f"prof.host_ms.{layer}"
                tid = tids.get(track)
                if tid is None:
                    continue
                out.append(
                    {
                        "ph": "C", "name": "host_ms", "pid": 1, "tid": tid,
                        "ts": ts, "args": {"value": round(cum_ns / 1e6, 4)},
                    }
                )
        return out

    def counter_tracks(self) -> List[str]:
        """Track names the counter timeline will emit (sorted)."""
        names = set()
        for _t, by_layer in self.counter_timeline:
            for layer in by_layer:
                names.add(f"prof.host_ms.{layer}")
        return sorted(names)

    def report(self, top: int = 14) -> str:
        """Human-readable attribution table (layers, then top kinds)."""
        self._flush_pending()
        lines: List[str] = []
        wall = self.wall_ns or max(self.attributed_self_ns(), 1)
        lines.append(
            f"host profile: {self.n_events} sim events, "
            f"wall {self.wall_ns / 1e6:.2f} ms, "
            f"coverage {100.0 * (self.coverage() or 0.0):.1f}%, "
            f"est. overhead {self.per_event_overhead_ns * self.n_events / 1e6:.2f} ms"
        )
        lines.append("  layer      share   self ms    events")
        layers = self._layer_totals()
        for name in sorted(layers, key=lambda k: -layers[k].self_ns):
            ls = layers[name]
            lines.append(
                f"  {name:<10s} {100.0 * ls.self_ns / wall:5.1f}%  "
                f"{ls.self_ns / 1e6:8.2f}  {ls.count:8d}"
            )
        ranked = sorted(
            list(self.events.values()) + list(self.dispatch.values()),
            key=lambda s: -s.self_ns,
        )[:top]
        if ranked:
            lines.append("  top kinds (self ms / count / max us):")
            for s in ranked:
                lines.append(
                    f"    {s.kind:<44s} {s.self_ns / 1e6:8.2f}  "
                    f"{s.count:7d}  {s.max_ns / 1e3:8.1f}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<HostProfiler events={self.n_events} kinds={len(self.events)} "
            f"wall_ms={self.wall_ns / 1e6:.2f}>"
        )

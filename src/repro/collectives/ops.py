"""UNR-based collective algorithms.

All operations are built from the same three UNR ingredients: a
registered buffer, a BLK handle published once at setup, and an MMAS
signal that fires when the expected puts have landed.  Buffers and
signals are double-generation (parity) so the collectives are reusable
every iteration without extra synchronization — consecutive calls use
alternating slots, and the at-most-one-call skew between ranks
guarantees a slot is always consumed and re-armed before its next use
(the same argument as the paper's RK1/RK2 pre-synchronization).

Algorithms:

* ``barrier``   — dissemination: ⌈log2 P⌉ rounds of notified 0-payload
  puts, one signal per (round, parity).
* ``bcast``     — binomial tree of notified puts.
* ``allgather`` — ring: each step forwards the previously received
  chunk; per-slot signals give exact arrival tracking.
* ``alltoall``  — direct notified puts with rotated target order (one
  aggregate signal of ``P-1`` events per parity).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from ..core import Unr, UnrEndpoint, UnrUsageError

__all__ = ["UnrCollectives"]

_GENS = 2  # parity generations for safe reuse


class UnrCollectives:
    """Per-rank collective context over ``ranks`` (call setup on all).

    ``chunk_bytes`` is the fixed per-rank payload size for
    bcast/allgather/alltoall (registered once, like an RMA plan).
    """

    def __init__(self, unr: Unr, ranks: Sequence[int], rank: int, chunk_bytes: int = 64):
        if rank not in ranks:
            raise UnrUsageError(f"rank {rank} not in {list(ranks)}")
        if chunk_bytes < 1:
            raise UnrUsageError("chunk_bytes must be positive")
        self.unr = unr
        self.ranks = list(ranks)
        self.rank = rank
        self.me = self.ranks.index(rank)
        self.size = len(self.ranks)
        self.chunk = chunk_bytes
        self.ep: UnrEndpoint = unr.endpoint(rank)
        self.real = True
        self._counts = {"barrier": 0, "bcast": 0, "allgather": 0, "alltoall": 0}
        # Filled by setup():
        self._bar_sigs = None
        self._bar_peer = None
        self._bc = None
        self._ag = None
        self._a2a = None
        self._ready = False

    # ------------------------------------------------------------- setup
    def setup(self):
        """Generator: register buffers, create signals, exchange BLKs."""
        ep = self.ep
        P, me = self.size, self.me
        rounds = max((P - 1).bit_length(), 1)

        # --- barrier: one 1-byte slot per (round, gen) --------------------
        bar_buf = np.zeros(rounds * _GENS, dtype=np.uint8)
        bar_mr = ep.mem_reg(bar_buf)
        self._bar_sigs = [
            [ep.sig_init(1) for _gen in range(_GENS)] for _r in range(rounds)
        ]
        my_bar_blks = [
            [
                ep.blk_init(bar_mr, (r * _GENS + g), 1, signal=self._bar_sigs[r][g])
                for g in range(_GENS)
            ]
            for r in range(rounds)
        ]
        self._bar_peer = []
        send_src = ep.blk_init(bar_mr, 0, 1)  # payload is irrelevant
        self._bar_src = send_src
        if P > 1:
            for r in range(rounds):
                to_peer = self.ranks[(me + (1 << r)) % P]
                from_peer = self.ranks[(me - (1 << r)) % P]
                yield from ep.send_ctl(from_peer, my_bar_blks[r], tag=("col-bar", r, me))
                peer_blks = yield from ep.recv_ctl(
                    to_peer, tag=("col-bar", r, (me + (1 << r)) % P)
                )
                self._bar_peer.append(peer_blks)

        # --- bcast: one chunk slot per gen; everyone knows everyone's ----
        bc_buf = np.zeros(self.chunk * _GENS, dtype=np.uint8)
        bc_mr = ep.mem_reg(bc_buf)
        bc_sigs = [ep.sig_init(1) for _g in range(_GENS)]
        my_bc = [
            ep.blk_init(bc_mr, g * self.chunk, self.chunk, signal=bc_sigs[g])
            for g in range(_GENS)
        ]
        all_bc = yield from self._publish_all(my_bc, "col-bc")
        self._bc = {"buf": bc_buf, "sigs": bc_sigs, "blks": all_bc, "mine": my_bc}

        # --- allgather: P slots per gen, per-slot signals ------------------
        ag_buf = np.zeros(P * self.chunk * _GENS, dtype=np.uint8)
        ag_mr = ep.mem_reg(ag_buf)
        ag_sigs = [[ep.sig_init(1) for _s in range(P)] for _g in range(_GENS)]
        my_ag = [
            [
                ep.blk_init(
                    ag_mr, (g * P + s) * self.chunk, self.chunk, signal=ag_sigs[g][s]
                )
                for s in range(P)
            ]
            for g in range(_GENS)
        ]
        right = self.ranks[(me + 1) % P]
        left = self.ranks[(me - 1) % P]
        yield from ep.send_ctl(left, my_ag, tag=("col-ag", me))
        right_blks = yield from ep.recv_ctl(right, tag=("col-ag", (me + 1) % P))
        self._ag = {
            "buf": ag_buf, "mr": ag_mr, "sigs": ag_sigs, "mine": my_ag,
            "right": right_blks, "right_rank": right,
        }

        # --- alltoall: P source slots per gen, one aggregate signal --------
        a2a_buf = np.zeros(P * self.chunk * _GENS, dtype=np.uint8)
        a2a_mr = ep.mem_reg(a2a_buf)
        a2a_send = np.zeros(P * self.chunk, dtype=np.uint8)
        a2a_send_mr = ep.mem_reg(a2a_send)
        a2a_sigs = [ep.sig_init(max(P - 1, 1)) for _g in range(_GENS)]
        my_a2a = [
            [
                ep.blk_init(
                    a2a_mr, (g * P + s) * self.chunk, self.chunk, signal=a2a_sigs[g]
                )
                for s in range(P)
            ]
            for g in range(_GENS)
        ]
        all_a2a = yield from self._publish_all(my_a2a, "col-a2a")
        self._a2a = {
            "buf": a2a_buf, "send": a2a_send, "send_mr": a2a_send_mr,
            "sigs": a2a_sigs, "blks": all_a2a,
        }
        self._ready = True
        return self

    def _publish_all(self, my_obj: Any, tag: str):
        """Ship ``my_obj`` to every peer; return everyone's, indexed by
        communicator rank."""
        ep = self.ep
        out: List[Any] = [None] * self.size
        out[self.me] = my_obj
        for j, peer in enumerate(self.ranks):
            if j == self.me:
                continue
            yield from ep.send_ctl(peer, my_obj, tag=(tag, self.me))
        for j, peer in enumerate(self.ranks):
            if j == self.me:
                continue
            out[j] = yield from ep.recv_ctl(peer, tag=(tag, j))
        return out

    def _need_setup(self) -> None:
        if not self._ready:
            raise UnrUsageError("call (yield from) setup() on every member first")

    # ------------------------------------------------------------ barrier
    def barrier(self):
        """Generator: dissemination barrier over notified puts."""
        self._need_setup()
        if self.size == 1:
            return
        gen = self._counts["barrier"] % _GENS
        self._counts["barrier"] += 1
        ep = self.ep
        P, me = self.size, self.me
        for r in range(max((P - 1).bit_length(), 1)):
            # My round-r token goes to the peer 2^r ahead; I wait for
            # the token from the peer 2^r behind (classic dissemination).
            ep.put(self._bar_src, self._bar_peer[r][gen])
            yield from ep.sig_wait(self._bar_sigs[r][gen])
            self.ep.sig_reset(self._bar_sigs[r][gen])

    # -------------------------------------------------------------- bcast
    def bcast(self, data: Optional[np.ndarray], root: int = 0):
        """Generator: binomial broadcast of one chunk from local rank
        ``root``; returns the chunk on every rank."""
        self._need_setup()
        gen = self._counts["bcast"] % _GENS
        self._counts["bcast"] += 1
        ep = self.ep
        P, me = self.size, self.me
        bc = self._bc
        view = bc["buf"][gen * self.chunk : (gen + 1) * self.chunk]
        if me == root:
            payload = np.asarray(data, dtype=np.uint8).reshape(-1)
            if payload.nbytes != self.chunk:
                raise UnrUsageError(
                    f"bcast payload must be {self.chunk} bytes, got {payload.nbytes}"
                )
            view[:] = payload
        else:
            yield from ep.sig_wait(bc["sigs"][gen])
        # Forward down the binomial tree (virtual ranks relative to root).
        vrank = (me - root) % P
        mask = 1
        while mask < P:
            mask <<= 1
        mask >>= 1
        src_blk = bc["mine"][gen].with_signal(None)
        while mask > 0:
            if vrank + mask < P and vrank % max(mask, 1) == 0 and not (vrank & mask):
                dst = (vrank + mask + root) % P
                ep.put(src_blk, bc["blks"][dst][gen])
            mask >>= 1
        out = view.copy()
        if me != root:
            ep.sig_reset(bc["sigs"][gen])
        return out

    # ----------------------------------------------------------- allgather
    def allgather(self, chunk: np.ndarray):
        """Generator: ring allgather; returns an array of shape (P, chunk)."""
        self._need_setup()
        gen = self._counts["allgather"] % _GENS
        self._counts["allgather"] += 1
        ep = self.ep
        P, me = self.size, self.me
        ag = self._ag
        payload = np.asarray(chunk, dtype=np.uint8).reshape(-1)
        if payload.nbytes != self.chunk:
            raise UnrUsageError(
                f"allgather chunk must be {self.chunk} bytes, got {payload.nbytes}"
            )
        base = gen * P
        buf = ag["buf"]
        my_slot = buf[(base + me) * self.chunk : (base + me + 1) * self.chunk]
        my_slot[:] = payload
        if P == 1:
            return buf[base * self.chunk : (base + 1) * self.chunk].copy().reshape(1, -1)
        # Ring: in step s, forward slot (me - s) mod P to the right.
        for s in range(P - 1):
            slot = (me - s) % P
            src = ag["mine"][gen][slot].with_signal(None)
            ep.put(src, ag["right"][gen][slot])
            incoming = (me - s - 1) % P
            yield from ep.sig_wait(ag["sigs"][gen][incoming])
            ep.sig_reset(ag["sigs"][gen][incoming])
        out = buf[base * self.chunk : (base + P) * self.chunk].copy()
        return out.reshape(P, self.chunk)

    # ------------------------------------------------------------ alltoall
    def alltoall(self, chunks: Sequence[np.ndarray]):
        """Generator: direct notified all-to-all; returns (P, chunk)."""
        self._need_setup()
        gen = self._counts["alltoall"] % _GENS
        self._counts["alltoall"] += 1
        ep = self.ep
        P, me = self.size, self.me
        a2a = self._a2a
        if len(chunks) != P:
            raise UnrUsageError(f"alltoall needs {P} chunks, got {len(chunks)}")
        base = gen * P
        # Stage the outgoing data in the registered send buffer.
        for j in range(P):
            payload = np.asarray(chunks[j], dtype=np.uint8).reshape(-1)
            if payload.nbytes != self.chunk:
                raise UnrUsageError(
                    f"alltoall chunks must be {self.chunk} bytes, got {payload.nbytes}"
                )
            a2a["send"][j * self.chunk : (j + 1) * self.chunk] = payload
        # Self-chunk: local copy.
        mine = a2a["buf"][(base + me) * self.chunk : (base + me + 1) * self.chunk]
        mine[:] = a2a["send"][me * self.chunk : (me + 1) * self.chunk]
        # Rotated target order (no hotspot, cf. backend_unr.put_slab).
        for k in range(1, P):
            j = (me + k) % P
            src = ep.blk_init(a2a["send_mr"], j * self.chunk, self.chunk)
            ep.put(src, a2a["blks"][j][gen][me])
        if P > 1:
            yield from ep.sig_wait(a2a["sigs"][gen])
            ep.sig_reset(a2a["sigs"][gen])
        out = a2a["buf"][base * self.chunk : (base + P) * self.chunk].copy()
        return out.reshape(P, self.chunk)

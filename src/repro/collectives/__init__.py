"""Notified-RMA collective operations built on UNR (paper §IV-E.3).

UNR itself ships no collectives ("its goal is to unify the different
Notifiable RMA Primitives"); the paper suggests implementing them *as
acceleration libraries based on UNR*, citing prior notified-RMA
collective work.  This package is that library: barrier, broadcast,
allgather and all-to-all implemented purely with notified PUTs and
MMAS signals — every arrival is observed through a signal, never
through matching or synchronization rounds.
"""

from .ops import UnrCollectives

__all__ = ["UnrCollectives"]

"""Message tracing: record every transfer a cluster performs.

Attach a :class:`MessageTrace` to a cluster *before* running and every
``post_put``/``post_get`` is recorded with its size, endpoints and
timing.  Useful for debugging communication schedules (who sent what
when), asserting traffic invariants in tests, and producing the
text timelines used in the examples.

Since the ``repro.obs`` layer landed, the transfer log itself lives on
the cluster's :class:`~repro.obs.Recorder` (``cluster.obs``) and
``MessageTrace`` is a thin *view* over it: attaching a trace arms the
recorder (idempotently), so a transfer is recorded exactly once no
matter how many observers exist, and ``attach`` can be called on an
already-observed cluster without double-wrapping the NICs.

>>> trace = MessageTrace.attach(cluster)
>>> ...run...
>>> trace.summary()["n_messages"]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.recorder import Recorder

__all__ = ["TraceRecord", "MessageTrace", "transfer_fingerprint", "render_timeline"]


@dataclass
class TraceRecord:
    """One recorded transfer."""

    kind: str  # 'put' | 'get'
    src_node: int
    src_rail: int
    dst_node: int
    dst_rail: int
    nbytes: int
    post_time: float
    deliver_time: Optional[float] = None
    ordered: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.post_time

    @property
    def intra_node(self) -> bool:
        return self.src_node == self.dst_node


def transfer_fingerprint(records: Iterable[TraceRecord]) -> str:
    """Stable digest of a transfer record sequence, order-sensitive.

    Two runs with the same program, seeds, and fault schedule must
    produce the same fingerprint — the replay guarantee checked by the
    fault-injection demo and tests, and the armed-vs-disarmed identity
    checked by the observability tests.
    """
    import hashlib

    h = hashlib.sha256()
    for r in records:
        h.update(
            (
                f"{r.kind}|{r.src_node}.{r.src_rail}>{r.dst_node}.{r.dst_rail}"
                f"|{r.nbytes}|{r.post_time!r}|{r.deliver_time!r}|{r.ordered}\n"
            ).encode()
        )
    return h.hexdigest()


def render_timeline(
    records: Sequence[TraceRecord], limit: int = 40, min_bytes: int = 0
) -> str:
    """Text rendering of the first ``limit`` transfers.

    A record delivered at simulated t=0.0 renders its timestamp, not
    "pending" — delivery is tested with ``is not None``, never
    truthiness (0.0 is falsy but perfectly delivered).
    """
    lines: List[str] = []
    for r in records:
        if r.nbytes < min_bytes:
            continue
        end = f"{r.deliver_time * 1e6:9.2f}" if r.deliver_time is not None else "  pending"
        lines.append(
            f"{r.post_time * 1e6:9.2f} -> {end} us  "
            f"{r.kind:3s} n{r.src_node}.{r.src_rail} => "
            f"n{r.dst_node}.{r.dst_rail}  {r.nbytes}B"
            f"{'  [ordered]' if r.ordered else ''}"
        )
        if len(lines) >= limit:
            lines.append(f"... ({len(records)} total)")
            break
    return "\n".join(lines)


class MessageTrace:
    """Transfer-log view over the cluster's :class:`~repro.obs.Recorder`.

    The public query API (``summary()``, ``fingerprint()``,
    ``per_pair_bytes()``, ``timeline()``, …) is unchanged from when this
    class wrapped the NICs itself; the recording now happens once, in
    :mod:`repro.obs.instrument`.
    """

    def __init__(self, recorder: "Recorder") -> None:
        self._recorder = recorder

    @property
    def records(self) -> List[TraceRecord]:
        return self._recorder.transfers

    @property
    def recorder(self) -> "Recorder":
        return self._recorder

    @classmethod
    def attach(cls, cluster: Any) -> "MessageTrace":
        """Arm observation on ``cluster`` (idempotent) and return a view."""
        from ..obs.recorder import Recorder

        return cls(Recorder.attach(cluster))

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.records)

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self.records if predicate(r)]

    def between(self, src_node: int, dst_node: int) -> List[TraceRecord]:
        return self.filter(
            lambda r: r.src_node == src_node and r.dst_node == dst_node
        )

    def summary(self) -> Dict[str, Any]:
        """Aggregate statistics over all messages.

        Undelivered records (dropped by fault injection, or still in
        flight when the run ended) have ``latency is None``; they are
        excluded from the latency aggregates but counted explicitly in
        ``n_dropped`` instead of being silently ignored.
        """
        records = self.records
        delivered = [r for r in records if r.deliver_time is not None]
        lat = [r.deliver_time - r.post_time for r in delivered if r.deliver_time is not None]
        return {
            "n_messages": len(records),
            "n_delivered": len(delivered),
            "n_dropped": len(records) - len(delivered),
            "total_bytes": sum(r.nbytes for r in records),
            "intra_node_messages": sum(r.intra_node for r in records),
            "min_latency": min(lat) if lat else None,
            "max_latency": max(lat) if lat else None,
            "mean_latency": (sum(lat) / len(lat)) if lat else None,
        }

    def fingerprint(self) -> str:
        """Stable digest of the full record list, order-sensitive."""
        return transfer_fingerprint(self.records)

    def per_pair_bytes(self) -> Dict[Tuple[int, int], int]:
        """Bytes moved per (src_node, dst_node)."""
        out: Dict[Tuple[int, int], int] = {}
        for r in self.records:
            key = (r.src_node, r.dst_node)
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def timeline(self, limit: int = 40, min_bytes: int = 0) -> str:
        """Text rendering of the first ``limit`` transfers."""
        return render_timeline(self.records, limit=limit, min_bytes=min_bytes)

"""Message tracing: record every transfer a cluster performs.

Attach a :class:`MessageTrace` to a cluster *before* running and every
``post_put``/``post_get`` is recorded with its size, endpoints and
timing.  Useful for debugging communication schedules (who sent what
when), asserting traffic invariants in tests, and producing the
text timelines used in the examples.

>>> trace = MessageTrace.attach(cluster)
>>> ...run...
>>> trace.summary()["n_messages"]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .nic import Nic

__all__ = ["TraceRecord", "MessageTrace"]


@dataclass
class TraceRecord:
    """One recorded transfer."""

    kind: str  # 'put' | 'get'
    src_node: int
    src_rail: int
    dst_node: int
    dst_rail: int
    nbytes: int
    post_time: float
    deliver_time: Optional[float] = None
    ordered: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.post_time

    @property
    def intra_node(self) -> bool:
        return self.src_node == self.dst_node


class MessageTrace:
    """Records transfers by wrapping the NICs' post methods."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._attached = False

    @classmethod
    def attach(cls, cluster) -> "MessageTrace":
        """Instrument every NIC of ``cluster``; returns the trace."""
        trace = cls()
        for node in cluster.nodes:
            for nic in node.nics:
                trace._wrap(nic)
        trace._attached = True
        return trace

    def _wrap(self, nic: Nic) -> None:
        orig_put = nic.post_put
        orig_get = nic.post_get
        records = self.records

        def post_put(dst, nbytes, *, on_deliver=None, ordered=False, **kw):
            rec = TraceRecord(
                kind="put",
                src_node=nic.node.index, src_rail=nic.index,
                dst_node=dst.node.index, dst_rail=dst.index,
                nbytes=nbytes, post_time=nic.env.now, ordered=ordered,
            )
            records.append(rec)

            def deliver(payload):
                rec.deliver_time = nic.env.now
                if on_deliver is not None:
                    on_deliver(payload)

            return orig_put(dst, nbytes, on_deliver=deliver, ordered=ordered, **kw)

        def post_get(dst, nbytes, *, on_deliver=None, **kw):
            rec = TraceRecord(
                kind="get",
                src_node=nic.node.index, src_rail=nic.index,
                dst_node=dst.node.index, dst_rail=dst.index,
                nbytes=nbytes, post_time=nic.env.now,
            )
            records.append(rec)

            def deliver(payload):
                rec.deliver_time = nic.env.now
                if on_deliver is not None:
                    on_deliver(payload)

            return orig_get(dst, nbytes, on_deliver=deliver, **kw)

        nic.post_put = post_put  # type: ignore[method-assign]
        nic.post_get = post_get  # type: ignore[method-assign]

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.records)

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self.records if predicate(r)]

    def between(self, src_node: int, dst_node: int) -> List[TraceRecord]:
        return self.filter(
            lambda r: r.src_node == src_node and r.dst_node == dst_node
        )

    def summary(self) -> Dict:
        """Aggregate statistics over all messages.

        Undelivered records (dropped by fault injection, or still in
        flight when the run ended) have ``latency is None``; they are
        excluded from the latency aggregates but counted explicitly in
        ``n_dropped`` instead of being silently ignored.
        """
        delivered = [r for r in self.records if r.deliver_time is not None]
        lat = [r.latency for r in delivered]
        return {
            "n_messages": len(self.records),
            "n_delivered": len(delivered),
            "n_dropped": len(self.records) - len(delivered),
            "total_bytes": sum(r.nbytes for r in self.records),
            "intra_node_messages": sum(r.intra_node for r in self.records),
            "min_latency": min(lat) if lat else None,
            "max_latency": max(lat) if lat else None,
            "mean_latency": (sum(lat) / len(lat)) if lat else None,
        }

    def fingerprint(self) -> str:
        """Stable digest of the full record list, order-sensitive.

        Two runs with the same program, seeds, and fault schedule must
        produce the same fingerprint — the replay guarantee checked by
        the fault-injection demo and tests.
        """
        import hashlib

        h = hashlib.sha256()
        for r in self.records:
            h.update(
                (
                    f"{r.kind}|{r.src_node}.{r.src_rail}>{r.dst_node}.{r.dst_rail}"
                    f"|{r.nbytes}|{r.post_time!r}|{r.deliver_time!r}|{r.ordered}\n"
                ).encode()
            )
        return h.hexdigest()

    def per_pair_bytes(self) -> Dict[tuple, int]:
        """Bytes moved per (src_node, dst_node)."""
        out: Dict[tuple, int] = {}
        for r in self.records:
            key = (r.src_node, r.dst_node)
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def timeline(self, limit: int = 40, min_bytes: int = 0) -> str:
        """Text rendering of the first ``limit`` transfers."""
        lines = []
        for r in self.records:
            if r.nbytes < min_bytes:
                continue
            end = f"{r.deliver_time * 1e6:9.2f}" if r.deliver_time else "  pending"
            lines.append(
                f"{r.post_time * 1e6:9.2f} -> {end} us  "
                f"{r.kind:3s} n{r.src_node}.{r.src_rail} => "
                f"n{r.dst_node}.{r.dst_rail}  {r.nbytes}B"
                f"{'  [ordered]' if r.ordered else ''}"
            )
            if len(lines) >= limit:
                lines.append(f"... ({len(self.records)} total)")
                break
        return "\n".join(lines)

"""Cluster assembly: nodes + NICs + fabric from a :class:`ClusterSpec`."""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim import Environment
from .node import Node
from .spec import ClusterSpec

__all__ = ["Cluster"]


class Cluster:
    """A simulated machine.

    >>> from repro.netsim import Cluster, ClusterSpec, NodeSpec, NicSpec
    >>> spec = ClusterSpec("toy", 2, NodeSpec(cores=4, nics=2),
    ...                    NicSpec(bandwidth_gbps=100, latency_us=1.0))
    >>> cluster = Cluster(Environment(), spec)
    >>> cluster.nodes[0].n_rails
    2
    """

    def __init__(self, env: Environment, spec: ClusterSpec):
        self.env = env
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        self.nodes: List[Node] = []
        for i in range(spec.n_nodes):
            node = Node(env, i, spec.node, spec.fabric, seed=int(self.rng.integers(0, 2**63 - 1)))
            node._attach_nics(spec.nic, spec.node.nics)
            self.nodes.append(node)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def inject_faults(self, spec) -> "FaultInjector":
        """Attach a :class:`~repro.netsim.faults.FaultInjector` built
        from ``spec`` (a :class:`FaultSpec` or a spec string).  Attach
        faults *before* a :class:`~repro.netsim.trace.MessageTrace` so
        the trace sees post-fault delivery times."""
        from .faults import FaultInjector, FaultSpec

        if isinstance(spec, str):
            spec = FaultSpec.parse(spec)
        return FaultInjector.attach(self, spec)

    def total_traffic(self) -> dict:
        """Aggregate NIC counters (for tests and benchmark reports)."""
        tx_msgs = tx_bytes = rx_msgs = rx_bytes = 0
        stalls = 0
        for node in self.nodes:
            for nic in node.nics:
                tx_msgs += nic.tx_msgs
                tx_bytes += nic.tx_bytes
                rx_msgs += nic.rx_msgs
                rx_bytes += nic.rx_bytes
                stalls += nic.cq.n_overflow_stalls
        return {
            "tx_msgs": tx_msgs,
            "tx_bytes": tx_bytes,
            "rx_msgs": rx_msgs,
            "rx_bytes": rx_bytes,
            "cq_overflow_stalls": stalls,
        }

    def __repr__(self) -> str:
        return f"<Cluster {self.spec.name!r} nodes={self.n_nodes}>"

"""Cluster assembly: nodes + NICs + fabric from a :class:`ClusterSpec`.

Nodes are **lazily instantiated**: constructing a :class:`Cluster` for
the paper's full TH-XY envelope (1728 nodes, §VII Figure 7) costs O(1)
per node — one pre-drawn seed — and a Node/NIC object graph is built
only when a node is first touched.  A halo-exchange job over a small
rank neighbourhood therefore never pays object setup for the other
~1700 nodes.

Determinism contract (what makes laziness behaviour-invisible):

* All node seeds are drawn **eagerly** at construction from the cluster
  RNG, in index order — the exact stream the historical eager loop
  consumed — so ``cluster.node(7)`` yields the same node regardless of
  which nodes were touched before it.
* Node/NIC construction schedules no simulation events, so
  materialization order cannot perturb the event sequence.
* Layers that wrap NICs (fault injectors, the observability recorder)
  register *node hooks* via :meth:`Cluster.add_node_hook`; hooks run in
  registration order on every node at materialization time, preserving
  the historical wrapper nesting (faults innermost, recorder outside).

Hot per-NIC state lives in one cluster-shared
:class:`~repro.netsim.slab.NicSlab` (struct-of-arrays), so traffic
aggregation is a column sum that never touches the object graph.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Union

import numpy as np

from ..sim import Environment
from .nic import configure_record_pool, reset_record_pool
from .node import Node
from .slab import NicSlab
from .spec import ClusterSpec

__all__ = ["Cluster"]

#: hook signature: called with each Node exactly once, at materialization
NodeHook = Callable[[Node], None]


class _NodesView:
    """Sequence facade over a lazy cluster's nodes.

    Supports the full read-only sequence protocol (``len``, ``in``,
    int/negative/slice indexing, iteration); any access materializes the
    touched node(s).  Iterating the view materializes the whole cluster
    — fine for tests and small machines, deliberate when you really do
    want every node.
    """

    __slots__ = ("_cluster",)

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster

    def __len__(self) -> int:
        return self._cluster.spec.n_nodes

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._cluster.node(i)
                    for i in range(*index.indices(len(self)))]
        return self._cluster.node(index)

    def __iter__(self) -> Iterator[Node]:
        for i in range(len(self)):
            yield self._cluster.node(i)

    def __repr__(self) -> str:
        c = self._cluster
        return f"<nodes of {c.spec.name!r}: {c.n_materialized}/{len(self)} materialized>"


class Cluster:
    """A simulated machine.

    >>> from repro.netsim import Cluster, ClusterSpec, NodeSpec, NicSpec
    >>> spec = ClusterSpec("toy", 2, NodeSpec(cores=4, nics=2),
    ...                    NicSpec(bandwidth_gbps=100, latency_us=1.0))
    >>> cluster = Cluster(Environment(), spec)
    >>> cluster.nodes[0].n_rails
    2
    """

    def __init__(self, env: Environment, spec: ClusterSpec):
        self.env = env
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        # Eager seed draw in index order: identical RNG stream to the
        # historical eager construction loop (the determinism anchor —
        # see module docstring).
        self._seeds: List[int] = [
            int(self.rng.integers(0, 2**63 - 1)) for _ in range(spec.n_nodes)
        ]
        self._nodes: Dict[int, Node] = {}
        self._node_hooks: List[NodeHook] = []
        #: shared struct-of-arrays store for all hot per-NIC scalars
        self.nic_slab = NicSlab()
        self.nodes = _NodesView(self)
        # Cold-start the process-global completion-record pool: per-run
        # hit/miss stats, and byte-stable metrics across identical runs.
        reset_record_pool()
        if spec.record_pool_limit is not None:
            configure_record_pool(spec.record_pool_limit)

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    @property
    def n_materialized(self) -> int:
        """How many nodes have actually been built (laziness telemetry)."""
        return len(self._nodes)

    def node(self, index: int) -> Node:
        """Return node ``index``, materializing it on first touch."""
        n = self.spec.n_nodes
        if index < 0:
            index += n
        node = self._nodes.get(index)
        if node is not None:
            return node
        if not 0 <= index < n:
            raise IndexError(f"node index {index} out of range (0..{n - 1})")
        node = Node(self.env, index, self.spec.node, self.spec.fabric,
                    seed=self._seeds[index])
        node._attach_nics(self.spec.nic, self.spec.node.nics,
                          slab=self.nic_slab)
        self._nodes[index] = node
        for hook in self._node_hooks:
            hook(node)
        return node

    def add_node_hook(self, hook: NodeHook) -> None:
        """Register ``hook`` to run on every node at materialization.

        The hook is applied immediately to already-materialized nodes
        (in index order), so attach-order semantics match the historical
        eager loops: a layer attached earlier wraps earlier and thus
        sits innermost.
        """
        self._node_hooks.append(hook)
        for index in sorted(self._nodes):
            hook(self._nodes[index])

    def materialized_nodes(self) -> List[Node]:
        """The nodes built so far, in index order (no materialization)."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def inject_faults(self, spec) -> "FaultInjector":
        """Attach a :class:`~repro.netsim.faults.FaultInjector` built
        from ``spec`` (a :class:`FaultSpec` or a spec string).  Attach
        faults *before* a :class:`~repro.netsim.trace.MessageTrace` so
        the trace sees post-fault delivery times."""
        from .faults import FaultInjector, FaultSpec

        if isinstance(spec, str):
            spec = FaultSpec.parse(spec)
        return FaultInjector.attach(self, spec)

    def total_traffic(self) -> dict:
        """Aggregate NIC counters (for tests and benchmark reports).

        A column sum over the shared slab — only materialized NICs have
        slots, and an unmaterialized NIC cannot have moved a byte.
        """
        return self.nic_slab.traffic_totals()

    def __repr__(self) -> str:
        return (
            f"<Cluster {self.spec.name!r} nodes={self.n_nodes} "
            f"materialized={self.n_materialized}>"
        )

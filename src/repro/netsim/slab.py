"""Struct-of-arrays slab storage for the netsim/engine hot path.

Three allocators live here, all designed for the cluster-scale runs
(1728 nodes, multi-thousand ranks) where per-object Python overhead and
per-instance dicts dominate memory:

:class:`RecordPool`
    The bounded free list behind :func:`repro.netsim.nic.alloc_record`.
    Grew out of the PR 6 module-level list; now carries a *configurable*
    cap and hit/miss statistics so slab sizing at 10k+ ranks is observed
    (through the Recorder's ``net.record_pool.*`` collector) rather than
    guessed.

:class:`NicSlab`
    One column set for every hot per-NIC scalar — port busy-until
    horizons, the message-issue horizon, traffic counters, and the
    completion-queue accounting.  Each NIC owns one *slot* (an integer
    index) shared with its CQ; columns are plain Python lists, so a
    3456-NIC cluster stores its hot state in a dozen contiguous lists
    instead of thousands of per-object attribute dicts, and aggregation
    (:meth:`traffic_totals`) is a column sum that never touches the
    Node/Nic object graph.

:class:`FragmentSlab`
    The transfer engine's in-flight reliable-fragment registry as
    fid-indexed append-only columns (slot ``fid - 1``).  Slots are never
    reused: a watchdog closure holding a stale fid can still read its
    ``cancelled`` flag long after the fragment retired.  Object-carrying
    columns are nulled at retirement so the slab pins only a row of
    ``None``s per completed fragment.

All classes are slotted (unrlint UNR009 scope covers this module).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["RecordPool", "NicSlab", "FragmentSlab", "DEFAULT_RECORD_POOL_LIMIT"]

#: historical default cap of the PR 6 record free list
DEFAULT_RECORD_POOL_LIMIT = 4096


class RecordPool:
    """A bounded free list with reuse statistics.

    Type-agnostic: callers construct the pooled objects themselves on a
    miss (:meth:`take` returning ``None``) and offer them back with
    :meth:`give`, which refuses (and counts) objects beyond ``limit``.
    """

    __slots__ = ("limit", "hits", "misses", "recycled", "dropped", "_free")

    def __init__(self, limit: int = DEFAULT_RECORD_POOL_LIMIT) -> None:
        if limit < 0:
            raise ValueError(f"pool limit must be >= 0, got {limit}")
        self.limit = limit
        self.hits = 0      # allocations served from the free list
        self.misses = 0    # allocations that constructed a new object
        self.recycled = 0  # objects accepted back into the pool
        self.dropped = 0   # objects refused because the pool was full
        self._free: List[Any] = []

    def take(self) -> Optional[Any]:
        """Pop a pooled object, or ``None`` (a miss — caller constructs)."""
        if self._free:
            self.hits += 1
            return self._free.pop()
        self.misses += 1
        return None

    def give(self, obj: Any) -> bool:
        """Offer ``obj`` back; ``False`` (dropped) when the pool is full."""
        if len(self._free) < self.limit:
            self._free.append(obj)
            self.recycled += 1
            return True
        self.dropped += 1
        return False

    def configure(self, limit: int) -> None:
        """Re-cap the pool; excess pooled objects are released at once."""
        if limit < 0:
            raise ValueError(f"pool limit must be >= 0, got {limit}")
        self.limit = limit
        if len(self._free) > limit:
            del self._free[limit:]

    def reset(self) -> None:
        """Drop all pooled objects and zero the statistics (keep the cap).

        Called at :class:`~repro.netsim.cluster.Cluster` construction so
        every run starts from a cold pool: the reported hit/miss stats
        are per-run, and identical runs in one process stay byte-stable
        even though the pool object is process-global.
        """
        self.hits = self.misses = self.recycled = self.dropped = 0
        self._free.clear()

    def __len__(self) -> int:
        return len(self._free)

    def stats(self) -> Dict[str, float]:
        """Snapshot of the pool accounting (Recorder collector payload)."""
        return {
            "limit": self.limit,
            "free": len(self._free),
            "hits": self.hits,
            "misses": self.misses,
            "recycled": self.recycled,
            "dropped": self.dropped,
        }


class NicSlab:
    """Hot per-NIC scalars as parallel columns, one slot per NIC.

    The NIC and its completion queue share the slot: ``tx_free`` /
    ``rx_free`` / ``tx_msg_free`` are the port and doorbell busy-until
    horizons, ``tx_msgs``..``rx_bytes`` the traffic counters, and the
    ``cq_*`` columns the queue accounting that used to live on
    ``CompletionQueue`` instances.
    """

    __slots__ = (
        "tx_free", "rx_free", "tx_msg_free",
        "tx_msgs", "tx_bytes", "rx_msgs", "rx_bytes",
        "cq_pushed", "cq_high_water", "cq_overflow_stalls",
        "cq_stall_time", "cq_stalled_until",
    )

    def __init__(self) -> None:
        self.tx_free: List[float] = []
        self.rx_free: List[float] = []
        self.tx_msg_free: List[float] = []
        self.tx_msgs: List[int] = []
        self.tx_bytes: List[int] = []
        self.rx_msgs: List[int] = []
        self.rx_bytes: List[int] = []
        self.cq_pushed: List[int] = []
        self.cq_high_water: List[int] = []
        self.cq_overflow_stalls: List[int] = []
        self.cq_stall_time: List[float] = []
        self.cq_stalled_until: List[float] = []

    def alloc(self) -> int:
        """Append one zeroed slot to every column; returns its index."""
        slot = len(self.tx_free)
        self.tx_free.append(0.0)
        self.rx_free.append(0.0)
        self.tx_msg_free.append(0.0)
        self.tx_msgs.append(0)
        self.tx_bytes.append(0)
        self.rx_msgs.append(0)
        self.rx_bytes.append(0)
        self.cq_pushed.append(0)
        self.cq_high_water.append(0)
        self.cq_overflow_stalls.append(0)
        self.cq_stall_time.append(0.0)
        self.cq_stalled_until.append(0.0)
        return slot

    @property
    def n_slots(self) -> int:
        return len(self.tx_free)

    def traffic_totals(self) -> Dict[str, int]:
        """Column-sum traffic aggregate (``Cluster.total_traffic``).

        Only materialized NICs have slots, which is exactly right: an
        unmaterialized NIC cannot have moved a byte.
        """
        return {
            "tx_msgs": sum(self.tx_msgs),
            "tx_bytes": sum(self.tx_bytes),
            "rx_msgs": sum(self.rx_msgs),
            "rx_bytes": sum(self.rx_bytes),
            "cq_overflow_stalls": sum(self.cq_overflow_stalls),
        }


class FragmentSlab:
    """In-flight reliable fragments, columns indexed by ``fid - 1``.

    Append-only: :meth:`alloc` mints monotonically increasing fids and
    slots are never reused, so any closure holding a fid can check
    :meth:`is_cancelled` safely forever.  :meth:`retire` nulls the
    object-carrying columns (op/sp/delivered/tokens) so a long run pins
    one row of ``None`` per completed fragment, not the object graph.
    """

    __slots__ = ("op", "sp", "delivered", "rtok", "ltok", "cancelled")

    def __init__(self) -> None:
        self.op: List[Any] = []
        self.sp: List[Any] = []
        self.delivered: List[Any] = []
        self.rtok: List[Optional[int]] = []
        self.ltok: List[Optional[int]] = []
        self.cancelled: List[bool] = []

    def alloc(self, op: Any, sp: Any, delivered: Any,
              rtok: Optional[int], ltok: Optional[int]) -> int:
        """Register one posted fragment; returns its fid (1-based)."""
        self.op.append(op)
        self.sp.append(sp)
        self.delivered.append(delivered)
        self.rtok.append(rtok)
        self.ltok.append(ltok)
        self.cancelled.append(False)
        return len(self.op)

    def is_cancelled(self, fid: int) -> bool:
        return self.cancelled[fid - 1]

    def cancel(self, fid: int) -> None:
        self.cancelled[fid - 1] = True

    def retire(self, fid: int) -> None:
        """Null the object columns of a completed/cancelled fragment.

        The ``cancelled`` flag survives retirement — stale watchdog
        closures read it after the fragment is gone.
        """
        i = fid - 1
        self.op[i] = None
        self.sp[i] = None
        self.delivered[i] = None
        self.rtok[i] = None
        self.ltok[i] = None

    def __len__(self) -> int:
        return len(self.op)

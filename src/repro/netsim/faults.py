"""Deterministic fault injection for the simulated fabric.

The happy-path cluster model delivers every fragment exactly once.  This
module wraps the NICs of a :class:`~repro.netsim.cluster.Cluster` (the
same interception idiom as :class:`~repro.netsim.trace.MessageTrace`)
and subjects unordered RDMA traffic to a *fault schedule*:

* **drop** — the fragment never reaches the destination (its wire time
  is still consumed; the sender's local completion still fires, exactly
  like a real lossy fabric);
* **duplicate** — the fragment is delivered twice, the replica after an
  extra delay (adaptive-routing ghost);
* **delay / reorder** — extra delivery latency, drawn per fragment, so
  fragments overtake one another;
* **corrupt** — the payload is damaged in flight.  With ``crc=True``
  (default) the receiving NIC's link-level CRC discards the frame — a
  corruption behaves like a drop with its own counter.  With
  ``crc=False`` the garbage is delivered *and notified*, for testing
  end-to-end detection;
* **rail_fail@t** — at simulated time ``t`` a whole NIC dies: frames
  still in flight to or from it are lost, and later posts on it never
  reach the wire;
* **cq_stall@t:dur** — a completion queue stops being serviced for a
  window, delaying every notification behind it;
* **endpoint_down@t:dur** — *every* rail of one node dies at ``t`` and
  recovers at ``t + dur`` (switch reboot, firmware hiccup): the RMA
  plane to that peer is dark for the window but the ordered/fallback
  lane survives — the scenario the health monitor degrades around;
* **node_crash@t** — fail-stop: the node goes permanently dark, rails
  *and* the ordered/fallback lane included.  Nothing posted to or from
  it delivers again; with the health layer armed the library raises
  :class:`~repro.core.errors.UnrPeerDeadError` instead of hanging;
* **link_flap@t:down** — one rail oscillates: ``n`` cycles of ``down``
  microseconds dead, then alive again, spaced ``period`` apart;
* **partition@t:dur:a:b** — control-plane partition: for the window the
  *ordered* lane (heartbeats, Level-0 control, BLK exchange, the MPI
  fallback) drops every message crossing between node sets ``a`` and
  ``b`` (``a=0+1:b=2+3``) while the unordered RDMA data rails stay up.
  The replication tier's suspicion counters climb on the silenced
  heartbeats, but promotion requires the fail-stop confirmation — this
  is the false-positive scenario a K-missed-heartbeats detector must
  survive.

Determinism and replay
----------------------
Every decision is drawn from one seeded ``numpy.random.Generator`` *at
post time*, in event order, and every deferred effect is scheduled on
the simulation's event heap.  Two runs of the same program with the
same :class:`FaultSpec` therefore produce bit-identical timelines — a
failing schedule is reproduced by its ``(spec, seed)`` pair alone.

Ordered traffic (``ordered=True`` posts: the Level-0 control channel,
BLK exchange, the MPI fallback) is exempt by default — it models a
reliable, order-preserving virtual lane.  Set ``fault_ordered=True`` to
subject it to the schedule as well.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Optional, Set, Tuple

import numpy as np

from .nic import CompletionRecord, Nic
from ..units import US

__all__ = [
    "RailFailure",
    "CqStall",
    "NodeCrash",
    "EndpointDown",
    "LinkFlap",
    "Partition",
    "FaultSpec",
    "FaultInjector",
]

DEFAULT_FAULT_SEED = 0xFA117


@dataclass(frozen=True)
class RailFailure:
    """Kill one NIC at ``time_us``; ``node``/``rail`` default to a
    deterministic draw from the injector's generator."""

    time_us: float
    node: Optional[int] = None
    rail: Optional[int] = None


@dataclass(frozen=True)
class CqStall:
    """Stop servicing one CQ for ``duration_us`` starting at ``time_us``."""

    time_us: float
    duration_us: float
    node: Optional[int] = None
    rail: Optional[int] = None


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop: at ``time_us`` the whole node goes permanently dark —
    every rail NIC dies and even the ordered (control/fallback) lane
    drops traffic to and from it.  ``node`` defaults to a deterministic
    draw from the injector's generator."""

    time_us: float
    node: Optional[int] = None


@dataclass(frozen=True)
class EndpointDown:
    """Every rail of one node dies at ``time_us`` and recovers at
    ``time_us + duration_us``.  The ordered/fallback lane stays up —
    this is the graceful-degradation scenario, not a fail-stop."""

    time_us: float
    duration_us: float
    node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration_us <= 0.0:
            raise ValueError(f"endpoint_down duration_us={self.duration_us} must be > 0")


@dataclass(frozen=True)
class LinkFlap:
    """One rail oscillates: ``n_flaps`` cycles of ``down_us`` dead then
    alive again, cycle starts spaced ``period_us`` apart (defaults to
    ``2 * down_us``)."""

    time_us: float
    down_us: float
    node: Optional[int] = None
    rail: Optional[int] = None
    n_flaps: int = 1
    period_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.down_us <= 0.0:
            raise ValueError(f"link_flap down_us={self.down_us} must be > 0")
        if self.n_flaps < 1:
            raise ValueError(f"link_flap n_flaps={self.n_flaps} must be >= 1")
        period = self.period_us if self.period_us is not None else 2.0 * self.down_us
        if period < self.down_us:
            raise ValueError(
                f"link_flap period_us={period} shorter than down_us={self.down_us}"
            )

    @property
    def period(self) -> float:
        return self.period_us if self.period_us is not None else 2.0 * self.down_us


@dataclass(frozen=True)
class Partition:
    """Control-plane partition between node sets ``a`` and ``b``: from
    ``time_us`` for ``duration_us`` every *ordered*-lane message crossing
    the cut is dropped (heartbeats, control, fallback), while unordered
    RDMA data traffic is untouched.  Membership is checked at delivery
    time, so frames in flight when the partition opens are lost too."""

    time_us: float
    duration_us: float
    a: Tuple[int, ...] = ()
    b: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_us <= 0.0:
            raise ValueError(f"partition duration_us={self.duration_us} must be > 0")
        if not self.a or not self.b:
            raise ValueError("partition needs both node sets (a=..:b=..)")
        if set(self.a) & set(self.b):
            raise ValueError(
                f"partition sets overlap: {sorted(set(self.a) & set(self.b))}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """One fault schedule.  Probabilities are per *fragment*; times are
    in microseconds of simulated time."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_us: float = 5.0
    corrupt: float = 0.0
    reorder: float = 0.0
    reorder_us: float = 3.0
    rail_failures: Tuple[RailFailure, ...] = ()
    cq_stalls: Tuple[CqStall, ...] = ()
    node_crashes: Tuple[NodeCrash, ...] = ()
    endpoint_downs: Tuple[EndpointDown, ...] = ()
    link_flaps: Tuple[LinkFlap, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    seed: int = DEFAULT_FAULT_SEED
    #: link-level CRC: corrupted frames are discarded at the receiver
    #: (like real fabrics) instead of delivering garbage.
    crc: bool = True
    #: also fault ordered (control-channel / fallback) traffic.
    fault_ordered: bool = False

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "corrupt", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} is not a probability")

    @property
    def is_noop(self) -> bool:
        return (
            self.drop == self.duplicate == self.delay == 0.0
            and self.corrupt == self.reorder == 0.0
            and not self.rail_failures
            and not self.cq_stalls
            and not self.node_crashes
            and not self.endpoint_downs
            and not self.link_flaps
            and not self.partitions
        )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, *, seed: Optional[int] = None) -> "FaultSpec":
        """Parse a spec string like
        ``"drop=0.3,reorder=0.2,rail_fail@t=5.0,cq_stall@t=3:dur=10"``.

        Comma-separated tokens; event tokens (``rail_fail``, ``cq_stall``,
        ``node_crash``, ``endpoint_down``, ``link_flap``, ``partition``)
        take colon-separated options (``t``, ``dur``, ``node``, ``rail``,
        ``down``, ``n``, ``period``; ``partition`` takes ``+``-separated
        node sets ``a``/``b``, e.g. ``partition@t=40:dur=100:a=0+1:b=2+3``).
        """
        kwargs: dict = {}
        rails: list = []
        stalls: list = []
        crashes: list = []
        downs: list = []
        flaps: list = []
        cuts: list = []
        aliases = {"dup": "duplicate", "ordered": "fault_ordered"}
        event_tokens = (
            "rail_fail@", "cq_stall@", "node_crash@", "endpoint_down@",
            "link_flap@", "partition@",
        )
        for token in (t.strip() for t in text.split(",") if t.strip()):
            if token.startswith(event_tokens):
                name, _, rest = token.partition("@")
                opts = {}
                for part in rest.split(":"):
                    k, _, v = part.partition("=")
                    if not v:
                        raise ValueError(f"bad fault option {part!r} in {token!r}")
                    if name == "partition" and k.strip() in ("a", "b"):
                        opts[k.strip()] = tuple(int(x) for x in v.split("+"))
                    else:
                        opts[k.strip()] = float(v)
                try:
                    if name == "rail_fail":
                        rails.append(RailFailure(
                            time_us=opts.pop("t"),
                            node=_opt_int(opts, "node"),
                            rail=_opt_int(opts, "rail"),
                        ))
                    elif name == "cq_stall":
                        stalls.append(CqStall(
                            time_us=opts.pop("t"),
                            duration_us=opts.pop("dur"),
                            node=_opt_int(opts, "node"),
                            rail=_opt_int(opts, "rail"),
                        ))
                    elif name == "node_crash":
                        crashes.append(NodeCrash(
                            time_us=opts.pop("t"),
                            node=_opt_int(opts, "node"),
                        ))
                    elif name == "endpoint_down":
                        downs.append(EndpointDown(
                            time_us=opts.pop("t"),
                            duration_us=opts.pop("dur"),
                            node=_opt_int(opts, "node"),
                        ))
                    elif name == "partition":
                        cuts.append(Partition(
                            time_us=opts.pop("t"),
                            duration_us=opts.pop("dur"),
                            a=tuple(opts.pop("a", ())),
                            b=tuple(opts.pop("b", ())),
                        ))
                    else:
                        flaps.append(LinkFlap(
                            time_us=opts.pop("t"),
                            down_us=opts.pop("down"),
                            node=_opt_int(opts, "node"),
                            rail=_opt_int(opts, "rail"),
                            n_flaps=_opt_int(opts, "n") or 1,
                            period_us=opts.pop("period", None),
                        ))
                except KeyError as exc:
                    raise ValueError(f"{token!r} is missing required option {exc}") from None
                if opts:
                    raise ValueError(f"unknown options {sorted(opts)} in {token!r}")
                continue
            key, _, value = token.partition("=")
            key = aliases.get(key.strip(), key.strip())
            if not value:
                raise ValueError(f"bad fault token {token!r} (expected key=value)")
            if key in ("drop", "duplicate", "delay", "delay_us",
                       "corrupt", "reorder", "reorder_us"):
                kwargs[key] = float(value)
            elif key == "seed":
                kwargs[key] = int(value, 0)
            elif key in ("crc", "fault_ordered"):
                kwargs[key] = value.strip().lower() in ("1", "true", "yes", "on")
            else:
                raise ValueError(f"unknown fault key {key!r}")
        if seed is not None and "seed" not in kwargs:
            kwargs["seed"] = seed
        return cls(
            rail_failures=tuple(rails),
            cq_stalls=tuple(stalls),
            node_crashes=tuple(crashes),
            endpoint_downs=tuple(downs),
            link_flaps=tuple(flaps),
            partitions=tuple(cuts),
            **kwargs,
        )


def _opt_int(opts: dict, key: str) -> Optional[int]:
    return int(opts.pop(key)) if key in opts else None


@dataclass
class _Fate:
    """The complete, pre-drawn destiny of one fragment."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    extra: float = 0.0  # seconds of added delivery delay
    dup_gap: float = 0.0  # seconds between the original and the replica
    corrupt_frac: float = 0.0  # position of the damaged byte


class FaultInjector:
    """Wraps every NIC of a cluster and applies a :class:`FaultSpec`.

    Attach *before* :class:`~repro.netsim.trace.MessageTrace` so the
    trace observes post-fault delivery times (dropped fragments keep
    ``deliver_time=None`` and show up in ``summary()['n_dropped']``).
    """

    def __init__(self, cluster, spec: FaultSpec):
        self.cluster = cluster
        self.env = cluster.env
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        self.stats: Counter = Counter()
        self.failed_rails: Set[tuple] = set()
        # Registry used by the observability layer's fault collector
        # (several injectors may be attached to one cluster).
        injectors = getattr(cluster, "fault_injectors", None)
        if injectors is None:
            injectors = []
            cluster.fault_injectors = injectors
        injectors.append(self)
        #: active partition windows: (start_s, end_s, set_a, set_b)
        self._partitions: list = [
            (
                p.time_us * US,
                (p.time_us + p.duration_us) * US,
                frozenset(p.a),
                frozenset(p.b),
            )
            for p in spec.partitions
        ]
        self._schedule_rail_failures()
        self._schedule_cq_stalls()
        self._schedule_node_crashes()
        self._schedule_endpoint_downs()
        self._schedule_link_flaps()
        self._schedule_partitions()
        # Wrap NICs as their nodes materialize (lazy cluster).  The hook
        # applies immediately to already-built nodes, so attaching the
        # injector before the Recorder keeps the fault wrapper innermost
        # exactly as the historical eager loop did.
        add_hook = getattr(cluster, "add_node_hook", None)
        if add_hook is not None:
            add_hook(self._wrap_node)
        else:  # plain/eager cluster stand-ins (tests)
            for node in cluster.nodes:
                self._wrap_node(node)

    def _wrap_node(self, node) -> None:
        for nic in node.nics:
            self._wrap(nic)

    @classmethod
    def attach(cls, cluster, spec: FaultSpec) -> "FaultInjector":
        return cls(cluster, spec)

    # -- scheduled events --------------------------------------------------
    def _schedule_rail_failures(self) -> None:
        for rf in self.spec.rail_failures:
            node_idx = rf.node if rf.node is not None else int(
                self.rng.integers(self.cluster.n_nodes)
            )
            node = self.cluster.node(node_idx)
            rail = rf.rail if rf.rail is not None else int(
                self.rng.integers(node.n_rails)
            )
            nic = node.nics[rail % node.n_rails]
            when = max(rf.time_us * US - self.env.now, 0.0)
            evt = self.env.timeout(when)
            evt.callbacks.append(lambda _e, n=nic: self._fail_rail(n))

    def _fail_rail(self, nic: Nic) -> None:
        if not nic.failed:
            nic.failed = True
            self.failed_rails.add(nic.global_id)
            self.stats["rail_failures"] += 1
            obs = getattr(self.cluster, "obs", None)
            if obs is not None:
                obs.event(
                    "fault.rail_fail", track="faults",
                    node=nic.node.index, rail=nic.index,
                )

    def _recover_rail(self, nic: Nic) -> None:
        """Bring a failed NIC back (endpoint recovery / link-flap up)."""
        if nic.failed and not nic.node.crashed:
            nic.failed = False
            self.failed_rails.discard(nic.global_id)
            self.stats["rails_recovered"] += 1
            obs = getattr(self.cluster, "obs", None)
            if obs is not None:
                obs.event(
                    "fault.rail_recover", track="faults",
                    node=nic.node.index, rail=nic.index,
                )

    def _schedule_node_crashes(self) -> None:
        for nc in self.spec.node_crashes:
            node_idx = nc.node if nc.node is not None else int(
                self.rng.integers(self.cluster.n_nodes)
            )
            node = self.cluster.node(node_idx)
            when = max(nc.time_us * US - self.env.now, 0.0)

            def crash(_e, node=node):
                if node.crashed:
                    return
                node.crashed = True
                self.stats["node_crashes"] += 1
                for nic in node.nics:
                    self._fail_rail(nic)
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event("fault.node_crash", track="faults", node=node.index)

            evt = self.env.timeout(when)
            evt.callbacks.append(crash)

    def _schedule_endpoint_downs(self) -> None:
        for ed in self.spec.endpoint_downs:
            node_idx = ed.node if ed.node is not None else int(
                self.rng.integers(self.cluster.n_nodes)
            )
            node = self.cluster.node(node_idx)
            when = max(ed.time_us * US - self.env.now, 0.0)
            dur = ed.duration_us * US

            def down(_e, node=node):
                self.stats["endpoint_downs"] += 1
                for nic in node.nics:
                    self._fail_rail(nic)
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event(
                        "fault.endpoint_down", track="faults",
                        node=node.index, dur_us=dur / US,
                    )

            def up(_e, node=node):
                self.stats["endpoint_recoveries"] += 1
                for nic in node.nics:
                    self._recover_rail(nic)
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event("fault.endpoint_up", track="faults", node=node.index)

            self.env.timeout(when).callbacks.append(down)
            self.env.timeout(when + dur).callbacks.append(up)

    def _schedule_link_flaps(self) -> None:
        for lf in self.spec.link_flaps:
            node_idx = lf.node if lf.node is not None else int(
                self.rng.integers(self.cluster.n_nodes)
            )
            node = self.cluster.node(node_idx)
            rail = lf.rail if lf.rail is not None else int(
                self.rng.integers(node.n_rails)
            )
            nic = node.nics[rail % node.n_rails]
            period = lf.period * US
            down_dur = lf.down_us * US
            start = max(lf.time_us * US - self.env.now, 0.0)

            def flap_down(_e, nic=nic):
                self.stats["link_flaps"] += 1
                self._fail_rail(nic)
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event(
                        "fault.link_flap", track="faults",
                        node=nic.node.index, rail=nic.index,
                    )

            def flap_up(_e, nic=nic):
                self._recover_rail(nic)

            for i in range(lf.n_flaps):
                self.env.timeout(start + i * period).callbacks.append(flap_down)
                self.env.timeout(start + i * period + down_dur).callbacks.append(flap_up)

    def _schedule_partitions(self) -> None:
        """Observability markers only — the cut itself is evaluated per
        delivery against the time windows in ``self._partitions``."""
        for p in self.spec.partitions:
            start = max(p.time_us * US - self.env.now, 0.0)
            dur = p.duration_us * US

            def opened(_e, p=p):
                self.stats["partitions"] += 1
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event(
                        "fault.partition", track="faults",
                        a=list(p.a), b=list(p.b), dur_us=p.duration_us,
                    )

            def healed(_e, p=p):
                self.stats["partitions_healed"] += 1
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event(
                        "fault.partition_heal", track="faults",
                        a=list(p.a), b=list(p.b),
                    )

            self.env.timeout(start).callbacks.append(opened)
            self.env.timeout(start + dur).callbacks.append(healed)

    def _partitioned(self, src_node: int, dst_node: int) -> bool:
        """Is the ordered lane between these nodes cut right now?"""
        now = self.env.now
        for start, end, a, b in self._partitions:
            if start <= now < end and (
                (src_node in a and dst_node in b)
                or (src_node in b and dst_node in a)
            ):
                return True
        return False

    def _schedule_cq_stalls(self) -> None:
        for cs in self.spec.cq_stalls:
            node_idx = cs.node if cs.node is not None else int(
                self.rng.integers(self.cluster.n_nodes)
            )
            node = self.cluster.node(node_idx)
            rail = cs.rail if cs.rail is not None else int(
                self.rng.integers(node.n_rails)
            )
            cq = node.nics[rail % node.n_rails].cq
            when = max(cs.time_us * US - self.env.now, 0.0)
            dur = cs.duration_us * US

            def start(_e, cq=cq, dur=dur, node_idx=node_idx, rail=rail % node.n_rails):
                cq.stall(self.env.now + dur)
                self.stats["cq_stalls"] += 1
                obs = getattr(self.cluster, "obs", None)
                if obs is not None:
                    obs.event(
                        "fault.cq_stall", track="faults",
                        node=node_idx, rail=rail, dur_us=dur / US,
                    )

            evt = self.env.timeout(when)
            evt.callbacks.append(start)

    # -- fate drawing ------------------------------------------------------
    def _draw_fate(self) -> _Fate:
        s = self.spec
        # A fixed number of draws per fragment keeps the stream aligned.
        u = self.rng.random(8)
        fate = _Fate()
        fate.drop = u[0] < s.drop
        fate.duplicate = u[1] < s.duplicate
        fate.corrupt = u[2] < s.corrupt
        if u[3] < s.delay:
            fate.extra += u[4] * 2.0 * s.delay_us * US
        if u[5] < s.reorder:
            fate.extra += u[6] * 2.0 * s.reorder_us * US
        fate.dup_gap = (0.25 + u[7]) * max(s.delay_us, s.reorder_us, 1.0) * US
        fate.corrupt_frac = u[4]
        return fate

    def _later(self, delay: float, fn: Callable[[], None]) -> None:
        if delay <= 0.0:
            fn()
            return
        evt = self.env.timeout(delay)
        evt.callbacks.append(lambda _e: fn())

    def _push(self, nic: Nic, record: CompletionRecord) -> None:
        rec = replace(record, complete_time=self.env.now)
        self.env.process(nic.cq.push(rec), name="fault-cqe")

    def _mangle(self, data, frac: float):
        """Flip one byte of a payload copy (``crc=False`` mode)."""
        if data is None or not hasattr(data, "__len__") or len(data) == 0:
            return data
        bad = np.array(data, copy=True)
        flat = bad.reshape(-1).view(np.uint8)
        flat[int(frac * (len(flat) - 1))] ^= 0xFF
        return bad

    # -- NIC wrapping ------------------------------------------------------
    def _wrap(self, nic: Nic) -> None:
        orig_put = nic.post_put
        orig_get = nic.post_get
        spec = self.spec
        env = self.env

        def post_put(dst, nbytes, *, payload=None, on_deliver=None,
                     local_record=None, remote_record=None,
                     remote_action=None, local_action=None, ordered=False):
            if ordered and not spec.fault_ordered:
                # The reliable ordered lane survives every fault except a
                # fail-stop node crash: traffic touching a crashed node is
                # blackholed, checked at delivery time so frames already in
                # flight when the crash fires are lost too.
                def ordered_deliver(data, _orig=on_deliver):
                    if nic.node.crashed or dst.node.crashed:
                        self.stats["ordered_killed"] += 1
                        return
                    if self._partitions and self._partitioned(
                        nic.node.index, dst.node.index
                    ):
                        self.stats["partition_dropped"] += 1
                        return
                    if _orig is not None:
                        _orig(data)

                return orig_put(dst, nbytes, payload=payload,
                                on_deliver=ordered_deliver,
                                local_record=local_record,
                                remote_record=remote_record,
                                remote_action=remote_action,
                                local_action=local_action, ordered=ordered)
            self.stats["fragments_seen"] += 1
            fate = self._draw_fate()
            if nic.failed or dst.failed:
                self.stats["posts_on_dead_rail"] += 1
                fate.drop = True

            def fire(data):
                if nic.failed or dst.failed:
                    self.stats["killed_in_flight"] += 1
                    return
                if fate.corrupt:
                    if spec.crc:
                        self.stats["corrupt_discarded"] += 1
                        return
                    self.stats["corrupt_delivered"] += 1
                    data = self._mangle(data, fate.corrupt_frac)
                if on_deliver is not None:
                    on_deliver(data)
                if remote_action is not None and dst.spec.atomic_offload:
                    remote_action()
                elif remote_record is not None:
                    self._push(dst, remote_record)

            def hook(data):
                if fate.drop:
                    self.stats["dropped"] += 1
                    return
                if fate.extra > 0.0:
                    self.stats["delayed"] += 1
                self._later(fate.extra, lambda: fire(data))
                if fate.duplicate:
                    self.stats["duplicated"] += 1
                    self._later(fate.extra + fate.dup_gap, lambda: fire(data))

            return orig_put(dst, nbytes, payload=payload, on_deliver=hook,
                            local_record=local_record, remote_record=None,
                            remote_action=None, local_action=local_action,
                            ordered=ordered)

        def post_get(dst, nbytes, *, fetch=None, on_deliver=None,
                     local_record=None, remote_record=None,
                     local_action=None, remote_action=None):
            self.stats["fragments_seen"] += 1
            fate = self._draw_fate()
            if nic.failed or dst.failed:
                self.stats["posts_on_dead_rail"] += 1
                fate.drop = True

            def fetch_hook():
                data = fetch() if fetch is not None else None
                if not fate.drop and not (nic.failed or dst.failed):
                    if remote_action is not None and dst.spec.atomic_offload:
                        remote_action()
                    elif remote_record is not None:
                        self._push(dst, remote_record)
                return data

            def fire(data):
                if nic.failed or dst.failed:
                    self.stats["killed_in_flight"] += 1
                    return
                if fate.corrupt:
                    if spec.crc:
                        self.stats["corrupt_discarded"] += 1
                        return
                    self.stats["corrupt_delivered"] += 1
                    data = self._mangle(data, fate.corrupt_frac)
                if on_deliver is not None:
                    on_deliver(data)
                if local_action is not None and nic.spec.atomic_offload:
                    local_action()
                elif local_record is not None:
                    self._push(nic, local_record)

            def hook(data):
                if fate.drop:
                    self.stats["dropped"] += 1
                    return
                if fate.extra > 0.0:
                    self.stats["delayed"] += 1
                self._later(fate.extra, lambda: fire(data))
                if fate.duplicate:
                    self.stats["duplicated"] += 1
                    self._later(fate.extra + fate.dup_gap, lambda: fire(data))

            return orig_get(dst, nbytes, fetch=fetch_hook, on_deliver=hook,
                            local_record=None, remote_record=None,
                            local_action=None, remote_action=None)

        nic.post_put = post_put  # type: ignore[method-assign]
        nic.post_get = post_get  # type: ignore[method-assign]

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.spec.seed:#x} "
            f"drop={self.spec.drop} dup={self.spec.duplicate} "
            f"failed_rails={sorted(self.failed_rails)}>"
        )

"""Hardware specification dataclasses for the simulated cluster.

Specs are written in engineering units (Gbps, microseconds); the
simulator converts to SI (bytes/second, seconds) once at construction.
All specs are frozen so a platform definition cannot drift mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..units import GBPS, US

__all__ = ["NicSpec", "FabricSpec", "NodeSpec", "ClusterSpec", "GBPS", "US"]


@dataclass(frozen=True)
class NicSpec:
    """One network interface card.

    Parameters
    ----------
    bandwidth_gbps:
        Link rate in Gbit/s (Table III: 200 for new TH Express, 114 for
        TH-2A, 100 for EDR IB, 25 for RoCE).
    latency_us:
        Base one-way wire+switch latency for a minimal message.
    msg_overhead_us:
        Per-message software/doorbell injection overhead on the sender.
    rx_overhead_us:
        Per-message handling overhead on the receiver NIC.
    cq_depth:
        Completion-queue depth; deliveries stall when the queue is full
        (the overflow problem that motivates the polling thread).
    atomic_offload:
        Level-4 co-design: the NIC can execute an atomic add against a
        host counter at delivery time, bypassing the completion queue.
    """

    bandwidth_gbps: float
    latency_us: float
    msg_overhead_us: float = 0.3
    rx_overhead_us: float = 0.2
    cq_depth: int = 4096
    atomic_offload: bool = False

    @property
    def bandwidth(self) -> float:
        """Bytes per second."""
        return self.bandwidth_gbps * GBPS

    @property
    def latency(self) -> float:
        """Seconds."""
        return self.latency_us * US

    @property
    def msg_overhead(self) -> float:
        return self.msg_overhead_us * US

    @property
    def rx_overhead(self) -> float:
        return self.rx_overhead_us * US

    def with_offload(self) -> "NicSpec":
        """Copy of this spec with Level-4 hardware atomic-add enabled."""
        return replace(self, atomic_offload=True)


@dataclass(frozen=True)
class FabricSpec:
    """Network fabric behaviour shared by all NICs of a cluster.

    ``routing_jitter`` is the adaptive-routing / multi-rail disorder
    knob: each message (or fragment) receives an extra delay drawn
    uniformly from ``[0, routing_jitter * serialization_time]``, so
    fragments of a striped message can arrive out of order — the reason
    partial-byte polling is unsafe (paper §II).
    """

    routing_jitter: float = 0.25
    intra_node_latency_us: float = 0.4
    intra_node_bandwidth_gbps: float = 400.0
    #: messages at or below this size interleave with bulk transfers at
    #: packet granularity (virtual lanes): they do not wait for — nor
    #: occupy — the ports' busy-until windows.  Without this, a 1 KB
    #: control message would head-of-line block behind a multi-MB RDMA
    #: write, which real fabrics do not do.
    small_message_cutoff: int = 8192

    @property
    def intra_node_latency(self) -> float:
        return self.intra_node_latency_us * US

    @property
    def intra_node_bandwidth(self) -> float:
        return self.intra_node_bandwidth_gbps * GBPS


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: cores plus one or more rails (NICs)."""

    cores: int
    nics: int = 1
    core_gflops: float = 20.0  # per-core sustained GFLOP/s for the cost model

    @property
    def core_flops(self) -> float:
        return self.core_gflops * 1e9


@dataclass(frozen=True)
class ClusterSpec:
    """A full machine: homogeneous nodes on one fabric."""

    name: str
    n_nodes: int
    node: NodeSpec
    nic: NicSpec
    fabric: FabricSpec = field(default_factory=FabricSpec)
    seed: int = 0xC0FFEE
    #: cap of the process-global completion-record free list
    #: (:class:`repro.netsim.slab.RecordPool`); ``None`` keeps the
    #: current/default cap.  Applied at :class:`Cluster` construction.
    record_pool_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.node.nics < 1:
            raise ValueError("node needs at least one NIC")
        if self.record_pool_limit is not None and self.record_pool_limit < 0:
            raise ValueError("record_pool_limit must be >= 0")

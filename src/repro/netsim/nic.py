"""NIC model: RDMA engines with completion queues and custom bits.

The NIC is where the paper's *Notifiable RMA Primitives* live: a PUT or
GET posted here produces completion records on the local and/or remote
completion queue (CQ), each carrying an opaque ``custom`` integer — the
"custom bits" whose width varies by interconnect (paper Table II).  The
interconnect adapters in :mod:`repro.interconnect` mask ``custom`` to
their platform's width; this module is width-agnostic.

Timing model (cut-through, busy-until bookkeeping):

* sender serializes injections: ``tx_start = max(now, tx_free)``,
  ``tx_end = tx_start + overhead + nbytes / bw``;
* first byte reaches the receiver ``latency`` after it leaves;
* the receiver port serializes concurrent incoming flows;
* adaptive routing adds per-message jitter proportional to the
  serialization time, so striped fragments arrive out of order unless
  ``ordered=True`` is requested (used by the Level-0 control channel and
  the MPI fallback).

Level-4 co-design: when :attr:`NicSpec.atomic_offload` is set and the
caller passes ``remote_action``, the NIC executes the action (an atomic
``*p += a``) directly at delivery time and posts **no** CQ entry — no
polling thread needed, reproducing the paper's §IV-C proposal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, TYPE_CHECKING

import numpy as np

from ..sim import Environment, Event, Store
from .slab import NicSlab, RecordPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = [
    "CompletionRecord",
    "CompletionQueue",
    "Nic",
    "CqOverflowError",
    "alloc_record",
    "recycle_record",
    "configure_record_pool",
    "record_pool_stats",
    "reset_record_pool",
]


class CqOverflowError(RuntimeError):
    """Raised when a CQ overflows and the cluster is in strict mode."""


@dataclass(slots=True)
class CompletionRecord:
    """One completion-queue entry.

    ``kind`` is one of ``put_local``, ``put_remote``, ``get_local``,
    ``get_remote``, ``ctrl`` (Level-0 control-channel delivery carrying a
    ``(sid, addend)`` payload) or ``msg`` (plain two-sided style delivery
    used by the MPI fallback channel).  ``custom`` is the raw custom-bits
    payload.  Records are drained by the per-node
    :class:`~repro.core.engine.ProgressEngine`, which routes each kind to
    its registered handler.

    Hot-path records are slab-allocated through :func:`alloc_record` and
    returned to the free list by :func:`recycle_record` once dispatched;
    ``dataclasses.replace`` copies (the fault injector's re-stamped
    deliveries) come out un-pooled and are left to the garbage collector.
    """

    kind: str
    custom: int = 0
    nbytes: int = 0
    src_node: int = -1
    dst_node: int = -1
    tag: Any = None
    payload: Any = None
    post_time: float = 0.0
    complete_time: float = 0.0
    #: opaque idempotence token; a faulted fabric may re-deliver the same
    #: record, and the signal path dedups on this (None = never dedup).
    token: Any = None
    #: slab bookkeeping: True only for live records handed out by
    #: ``alloc_record`` (``init=False`` so ``dataclasses.replace`` copies
    #: never claim pool membership and can't be double-recycled).
    _pooled: bool = field(init=False, default=False, repr=False, compare=False)


#: Free list for :func:`alloc_record`; bounded so a pathological burst
#: cannot pin memory forever.  Process-global (records flow between
#: clusters' progress engines only within one process); the cap is
#: configurable via :func:`configure_record_pool` /
#: ``ClusterSpec.record_pool_limit``, and the hit/miss accounting is
#: surfaced through the Recorder's ``net.record_pool.*`` collector.
_RECORD_POOL = RecordPool()


def configure_record_pool(limit: int) -> None:
    """Re-cap the process-global completion-record free list."""
    _RECORD_POOL.configure(limit)


def record_pool_stats() -> Dict[str, float]:
    """Hit/miss/recycle accounting of the record free list."""
    return _RECORD_POOL.stats()


def reset_record_pool() -> None:
    """Cold-start the pool (new run): clear the free list, zero stats."""
    _RECORD_POOL.reset()


def alloc_record(
    kind: str,
    *,
    custom: int = 0,
    nbytes: int = 0,
    src_node: int = -1,
    dst_node: int = -1,
    tag: Any = None,
    payload: Any = None,
    post_time: float = 0.0,
    complete_time: float = 0.0,
    token: Any = None,
) -> CompletionRecord:
    """Slab-allocate a :class:`CompletionRecord` (free-list reuse).

    Identical field semantics to the constructor; the returned record is
    marked pool-owned so :func:`recycle_record` can reclaim it after the
    progress engine dispatches it.
    """
    rec = _RECORD_POOL.take()
    if rec is not None:
        rec.kind = kind
        rec.custom = custom
        rec.nbytes = nbytes
        rec.src_node = src_node
        rec.dst_node = dst_node
        rec.tag = tag
        rec.payload = payload
        rec.post_time = post_time
        rec.complete_time = complete_time
        rec.token = token
    else:
        rec = CompletionRecord(
            kind, custom, nbytes, src_node, dst_node, tag, payload,
            post_time, complete_time, token,
        )
    rec._pooled = True
    return rec


def recycle_record(rec: CompletionRecord) -> None:
    """Return a pool-owned record to the free list (no-op otherwise).

    Clears the reference-carrying fields so the pool never pins payloads
    or tokens.  Safe against double-recycling: the first call clears the
    pool flag.
    """
    if not rec._pooled:
        return
    rec._pooled = False
    rec.tag = None
    rec.payload = None
    rec.token = None
    _RECORD_POOL.give(rec)


class CompletionQueue:
    """Finite-depth completion queue with overflow accounting.

    ``push`` is a *process step*: it blocks (backpressure) while the
    queue is full, which is how an un-polled NIC degrades — exactly the
    failure mode the progress engine's sweep loops (levels 0–3) and the
    Level-4 hardware offload exist to prevent.  Draining (``get`` /
    ``poll`` / ``poll_batch``) is reserved to
    :class:`~repro.core.engine.ProgressEngine`; unrlint rule UNR007
    flags any other caller.
    """

    __slots__ = ("env", "depth", "_store", "_slab", "_slot")

    def __init__(
        self,
        env: Environment,
        depth: int,
        *,
        slab: Optional[NicSlab] = None,
        slot: Optional[int] = None,
    ):
        self.env = env
        self.depth = depth
        self._store = Store(env, capacity=depth)
        # Accounting lives in struct-of-arrays slab columns.  A NIC's CQ
        # shares the NIC's slot in the cluster slab; standalone queues
        # (tests, ad-hoc models) get a private single-slot slab.
        if slab is None:
            slab = NicSlab()
            slot = slab.alloc()
        assert slot is not None
        self._slab = slab
        self._slot = slot

    # -- slab-backed accounting (columns, one slot per queue) ----------
    @property
    def high_water(self) -> int:
        return self._slab.cq_high_water[self._slot]

    @property
    def n_pushed(self) -> int:
        return self._slab.cq_pushed[self._slot]

    @property
    def n_overflow_stalls(self) -> int:
        return self._slab.cq_overflow_stalls[self._slot]

    @property
    def stall_time(self) -> float:
        return self._slab.cq_stall_time[self._slot]

    @property
    def stalled_until(self) -> float:
        return self._slab.cq_stalled_until[self._slot]

    @property
    def is_stalled(self) -> bool:
        return self.env.now < self._slab.cq_stalled_until[self._slot]

    def stall(self, until: float) -> None:
        """Suspend servicing (``poll``/``poll_batch``) until sim time
        ``until``.  Blocking ``get`` waiters already in flight are not
        interrupted; pollers must check :attr:`is_stalled`."""
        col = self._slab.cq_stalled_until
        col[self._slot] = max(col[self._slot], until)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    def push(self, record: CompletionRecord):
        """Generator: enqueue ``record``, stalling while the CQ is full."""
        slab, i = self._slab, self._slot
        if self._store.is_full:
            slab.cq_overflow_stalls[i] += 1
            t0 = self.env.now
            yield self._store.put(record)
            slab.cq_stall_time[i] += self.env.now - t0
        else:
            yield self._store.put(record)
        slab.cq_pushed[i] += 1
        depth = len(self._store)
        if depth > slab.cq_high_water[i]:
            slab.cq_high_water[i] = depth

    def try_push(self, record: CompletionRecord) -> bool:
        """Synchronous fast-path enqueue; ``False`` when the CQ is full.

        The accounting matches :meth:`push` exactly, but no put event is
        scheduled: a waiting sweeper is woken through the store's getter
        queue, which is the one kernel event a delivery inherently
        costs.  On ``False`` the caller must fall back to the blocking
        :meth:`push` so overflow keeps its backpressure semantics
        (stall counters, completion only after the record is queued).
        """
        if not self._store.put_nowait(record):
            return False
        slab, i = self._slab, self._slot
        slab.cq_pushed[i] += 1
        depth = len(self._store)
        if depth > slab.cq_high_water[i]:
            slab.cq_high_water[i] = depth
        return True

    def poll(self) -> Optional[CompletionRecord]:
        """Non-blocking: pop one record or return ``None``."""
        if self.is_stalled:
            return None
        return self._store.try_get()

    def poll_batch(self, limit: int = 64) -> list:
        """Pop up to ``limit`` records without blocking."""
        if self.is_stalled:
            return []
        out = []
        for _ in range(limit):
            rec = self._store.try_get()
            if rec is None:
                break
            out.append(rec)
        return out

    def poll_batch_into(self, buf: list, limit: int) -> int:
        """Drain up to ``limit`` records into the preallocated ``buf``.

        Allocation-free variant of :meth:`poll_batch` for the progress
        engine's batched sweep: returns the number of records written to
        ``buf[0:n]``.  Stalled CQs hold their records back, exactly like
        :meth:`poll_batch`.
        """
        if self.is_stalled:
            return 0
        store = self._store
        n = 0
        while n < limit:
            rec = store.try_get()
            if rec is None:
                break
            buf[n] = rec
            n += 1
        return n

    def get(self) -> Event:
        """Blocking pop (used by event-driven pollers)."""
        return self._store.get()


def _blocking_push(cq: CompletionQueue, record: CompletionRecord) -> Generator:
    """Overflow fallback: the blocking CQ push as its own process."""
    yield from cq.push(record)


def _push_then_resolve(
    cq: CompletionQueue, record: CompletionRecord, done: Event, value: Any
) -> Generator:
    """Overflow fallback preserving completion order: the ``done`` event
    must not fire until the record is actually queued.  ``value=None``
    resolves with the (possibly later) enqueue time, matching the old
    GET semantics; PUT passes its fixed ``tx_end``."""
    yield from cq.push(record)
    done.resolve(cq.env.now if value is None else value)


class Nic:  # unrlint: disable=UNR009
    """One RDMA-capable network interface.

    Deliberately un-slotted: the fault-injection and observability
    layers wrap a live NIC by *assigning* ``nic.post_put``/``nic.post_get``
    on the instance, which needs a ``__dict__``.  There is exactly one
    Nic per rail per node, so the per-instance dict is not a hot-path
    allocation the way records and events are.
    """

    def __init__(
        self,
        env: Environment,
        node: "Node",
        index: int,
        spec,
        fabric,
        rng: np.random.Generator,
        *,
        slab: Optional[NicSlab] = None,
        slot: Optional[int] = None,
    ):
        self.env = env
        self.node = node
        self.index = index
        self.spec = spec
        self.fabric = fabric
        self.rng = rng
        # Hot scalar state (port/doorbell busy-until horizons, traffic
        # counters, CQ accounting) lives in struct-of-arrays columns: one
        # slot per NIC, shared with its CQ.  A cluster hands every NIC a
        # slot in its shared slab; standalone NICs get a private one.
        if slab is None:
            slab = NicSlab()
            slot = slab.alloc()
        assert slot is not None
        self._slab = slab
        self._slot = slot
        self.cq = CompletionQueue(env, spec.cq_depth, slab=slab, slot=slot)
        # Fault injection: a failed rail delivers nothing (see
        # :mod:`repro.netsim.faults`); the happy path never sets this.
        self.failed = False
        # Per-source ordered-delivery horizon (for ordered=True traffic).
        self._ordered_horizon: dict = {}

    # ------------------------------------------------------------------
    # slab-backed traffic counters (read-only compatibility surface; the
    # datapath below writes the columns directly)
    @property
    def tx_msgs(self) -> int:
        return self._slab.tx_msgs[self._slot]

    @property
    def tx_bytes(self) -> int:
        return self._slab.tx_bytes[self._slot]

    @property
    def rx_msgs(self) -> int:
        return self._slab.rx_msgs[self._slot]

    @property
    def rx_bytes(self) -> int:
        return self._slab.rx_bytes[self._slot]

    @property
    def global_id(self) -> tuple:
        return (self.node.index, self.index)

    def _wire_latency(self, dst: "Nic") -> float:
        if dst.node is self.node:
            return self.fabric.intra_node_latency
        return self.spec.latency

    def _bandwidth_to(self, dst: "Nic") -> float:
        if dst.node is self.node:
            return self.fabric.intra_node_bandwidth
        return min(self.spec.bandwidth, dst.spec.bandwidth)

    def _jitter(self, dst: "Nic", serialization: float, ordered: bool) -> float:
        if ordered or dst.node is self.node:
            return 0.0
        return float(self.rng.uniform(0.0, self.fabric.routing_jitter * serialization))

    # ------------------------------------------------------------------
    def post_put(
        self,
        dst: "Nic",
        nbytes: int,
        *,
        payload: Any = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        local_record: Optional[CompletionRecord] = None,
        remote_record: Optional[CompletionRecord] = None,
        remote_action: Optional[Callable[[], None]] = None,
        local_action: Optional[Callable[[], None]] = None,
        ordered: bool = False,
    ) -> Event:
        """Post an RDMA write of ``nbytes`` to ``dst``.

        Returns an event that fires at *local completion* (source buffer
        reusable).  ``on_deliver(payload)`` runs at the instant the data
        lands in the destination memory.  ``remote_record`` /
        ``local_record`` are CQ entries to post; ``remote_action`` /
        ``local_action`` are Level-4 hardware atomic actions executed
        instead of (or in addition to) CQ entries when the corresponding
        NIC supports :attr:`~repro.netsim.spec.NicSpec.atomic_offload`.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        env = self.env
        now = env.now
        slab, slot = self._slab, self._slot
        if dst.node is self.node:
            # Intra-node: a memcpy through shared memory — it does not
            # occupy the NIC tx/rx ports (real stacks use CMA/XPMEM).
            start = max(now, self.node._loopback_free)
            tx_end = start + nbytes / self.fabric.intra_node_bandwidth
            self.node._loopback_free = tx_end
            deliver_at = tx_end + self.fabric.intra_node_latency
            if ordered:
                key = self.global_id
                deliver_at = max(deliver_at, dst._ordered_horizon.get(key, 0.0))
                dst._ordered_horizon[key] = deliver_at
        elif nbytes <= self.fabric.small_message_cutoff:
            # Small messages interleave with bulk traffic at packet
            # granularity: they do not wait for the ports' bandwidth
            # busy-until windows — but they do consume the NIC's
            # message-issue rate (one doorbell/WQE per message).
            bw = self._bandwidth_to(dst)
            serialization = nbytes / bw
            start = max(now, slab.tx_msg_free[slot])
            slab.tx_msg_free[slot] = start + self.spec.msg_overhead
            tx_end = start + self.spec.msg_overhead + serialization
            latency = self._wire_latency(dst)
            deliver_at = (
                tx_end
                + latency
                + dst.spec.rx_overhead
                + self._jitter(dst, serialization, ordered)
            )
            if ordered:
                key = self.global_id
                deliver_at = max(deliver_at, dst._ordered_horizon.get(key, 0.0))
                dst._ordered_horizon[key] = deliver_at
        else:
            bw = self._bandwidth_to(dst)
            tx_start = max(now, slab.tx_free[slot])
            serialization = nbytes / bw
            tx_end = tx_start + self.spec.msg_overhead + serialization
            slab.tx_free[slot] = tx_end
            latency = self._wire_latency(dst)
            first_byte = tx_start + self.spec.msg_overhead + latency
            dslab, dslot = dst._slab, dst._slot
            rx_start = max(first_byte, dslab.rx_free[dslot])
            dslab.rx_free[dslot] = rx_start + serialization
            deliver_at = (
                max(tx_end + latency, rx_start + serialization)
                + dst.spec.rx_overhead
                + self._jitter(dst, serialization, ordered)
            )
            if ordered:
                key = self.global_id
                deliver_at = max(deliver_at, dst._ordered_horizon.get(key, 0.0))
                dst._ordered_horizon[key] = deliver_at

        slab.tx_msgs[slot] += 1
        slab.tx_bytes[slot] += nbytes
        done = env.event()

        # Each side is one deferred callback — one heap entry instead of
        # a generator process (Initialize + yields + completion events).
        def local_side(_value: Any) -> None:
            if local_action is not None and self.spec.atomic_offload:
                local_action()
            elif local_record is not None:
                local_record.complete_time = env.now
                if not self.cq.try_push(local_record):
                    env.process(
                        _push_then_resolve(self.cq, local_record, done, tx_end),
                        name="nic-put-local",
                    )
                    return
            done.resolve(tx_end)

        def remote_side(_value: Any) -> None:
            rslab, rslot = dst._slab, dst._slot
            rslab.rx_msgs[rslot] += 1
            rslab.rx_bytes[rslot] += nbytes
            if on_deliver is not None:
                on_deliver(payload)
            if remote_action is not None and dst.spec.atomic_offload:
                remote_action()
            elif remote_record is not None:
                remote_record.complete_time = env.now
                if not dst.cq.try_push(remote_record):
                    env.process(
                        _blocking_push(dst.cq, remote_record),
                        name="nic-put-remote",
                    )

        env.defer(tx_end - now, local_side)
        env.defer(deliver_at - now, remote_side)
        return done

    # ------------------------------------------------------------------
    def post_get(
        self,
        dst: "Nic",
        nbytes: int,
        *,
        fetch: Optional[Callable[[], Any]] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        local_record: Optional[CompletionRecord] = None,
        remote_record: Optional[CompletionRecord] = None,
        local_action: Optional[Callable[[], None]] = None,
        remote_action: Optional[Callable[[], None]] = None,
    ) -> Event:
        """Post an RDMA read of ``nbytes`` from ``dst`` (round trip).

        ``fetch()`` snapshots the remote data when the request reaches
        the target; ``on_deliver(data)`` lands it locally.  The returned
        event fires at local completion (data available).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        env = self.env
        now = env.now
        bw = self._bandwidth_to(dst)
        slab, slot = self._slab, self._slot
        dslab, dslot = dst._slab, dst._slot
        # Request leg: minimal message.
        tx_start = max(now, slab.tx_free[slot])
        req_end = tx_start + self.spec.msg_overhead
        slab.tx_free[slot] = req_end
        latency = self._wire_latency(dst)
        req_arrive = req_end + latency
        # Response leg: target injects the data back.
        serialization = nbytes / bw
        resp_start = max(req_arrive, dslab.tx_free[dslot])
        resp_end = resp_start + dst.spec.msg_overhead + serialization
        dslab.tx_free[dslot] = resp_end
        rx_start = max(
            resp_start + dst.spec.msg_overhead + latency, slab.rx_free[slot]
        )
        slab.rx_free[slot] = rx_start + serialization
        deliver_at = (
            max(resp_end + latency, rx_start + serialization)
            + self.spec.rx_overhead
            + self._jitter(dst, serialization, ordered=False)
        )

        slab.tx_msgs[slot] += 1
        dslab.tx_msgs[dslot] += 1
        dslab.tx_bytes[dslot] += nbytes
        slab.rx_msgs[slot] += 1
        slab.rx_bytes[slot] += nbytes
        done = env.event()
        fetched: Any = None

        def remote_side(_value: Any) -> None:
            nonlocal fetched
            if fetch is not None:
                fetched = fetch()
            if remote_action is not None and dst.spec.atomic_offload:
                remote_action()
            elif remote_record is not None:
                remote_record.complete_time = env.now
                if not dst.cq.try_push(remote_record):
                    env.process(
                        _blocking_push(dst.cq, remote_record),
                        name="nic-get-remote",
                    )

        def local_side(_value: Any) -> None:
            if on_deliver is not None:
                on_deliver(fetched)
            if local_action is not None and self.spec.atomic_offload:
                local_action()
            elif local_record is not None:
                local_record.complete_time = env.now
                if not self.cq.try_push(local_record):
                    env.process(
                        _push_then_resolve(self.cq, local_record, done, None),
                        name="nic-get-local",
                    )
                    return
            done.resolve(env.now)

        env.defer(resp_end - now, remote_side)
        env.defer(deliver_at - now, local_side)
        return done

    def __repr__(self) -> str:
        return f"<Nic node={self.node.index} rail={self.index}>"

"""Simulated HPC cluster: nodes, multi-rail NICs, fabric, CPU cores.

This package is the hardware substitute mandated by the reproduction
plan (DESIGN.md §1): it provides the *semantics* of Notifiable RMA
Primitives — RDMA PUT/GET whose completions carry custom bits into
finite completion queues — plus a calibrated latency/bandwidth/
contention model so the paper's performance shapes carry over.
"""

from .cluster import Cluster
from .faults import (
    CqStall,
    EndpointDown,
    FaultInjector,
    FaultSpec,
    LinkFlap,
    NodeCrash,
    RailFailure,
)
from .nic import (
    CompletionQueue,
    CompletionRecord,
    CqOverflowError,
    Nic,
    alloc_record,
    configure_record_pool,
    record_pool_stats,
    recycle_record,
    reset_record_pool,
)
from .node import CpuSet, Node
from .slab import FragmentSlab, NicSlab, RecordPool
from .spec import GBPS, US, ClusterSpec, FabricSpec, NicSpec, NodeSpec
from .trace import MessageTrace, TraceRecord

__all__ = [
    "GBPS",
    "US",
    "Cluster",
    "ClusterSpec",
    "CompletionQueue",
    "CompletionRecord",
    "CqOverflowError",
    "CqStall",
    "CpuSet",
    "EndpointDown",
    "FabricSpec",
    "FaultInjector",
    "FaultSpec",
    "FragmentSlab",
    "LinkFlap",
    "Nic",
    "NicSlab",
    "NicSpec",
    "MessageTrace",
    "Node",
    "NodeCrash",
    "NodeSpec",
    "RailFailure",
    "RecordPool",
    "TraceRecord",
    "alloc_record",
    "configure_record_pool",
    "record_pool_stats",
    "recycle_record",
    "reset_record_pool",
]

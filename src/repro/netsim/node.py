"""Compute-node model: CPU cores, compute-cost accounting, rails.

The :class:`CpuSet` reproduces the paper's polling-thread contention
(§VI-C, Figure 6 HPC-IB): a UNR polling thread that shares cores with
the application slows computation down, while reserving dedicated cores
removes the interference at the price of fewer compute cores.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim import Environment

__all__ = ["CpuSet", "Node"]


class CpuSet:
    """Core accounting for one node.

    Computation is expressed as *wall seconds assuming `threads` dedicated
    cores*.  The effective duration is scaled by the oversubscription
    factor ``(threads + polling_load) / available_cores`` whenever demand
    exceeds the cores left after reservations.

    ``polling_load`` is the core-equivalent demand of polling threads
    that were *not* given a reserved core (1.0 for a busy-poll thread,
    ``duty`` < 1 for interval polling).
    """

    __slots__ = ("env", "n_cores", "reserved", "polling_load", "busy_seconds")

    def __init__(self, env: Environment, n_cores: int):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.env = env
        self.n_cores = n_cores
        self.reserved = 0
        self.polling_load = 0.0
        self.busy_seconds = 0.0  # accumulated core-seconds of compute

    @property
    def available(self) -> int:
        """Cores usable by application threads."""
        return max(self.n_cores - self.reserved, 0)

    def reserve(self, n: int) -> None:
        """Dedicate ``n`` cores (e.g. to the UNR polling thread)."""
        if n < 0 or self.reserved + n >= self.n_cores:
            raise ValueError(
                f"cannot reserve {n} of {self.n_cores} cores "
                f"({self.reserved} already reserved)"
            )
        self.reserved += n

    def add_polling_load(self, duty: float) -> None:
        """Register an unreserved polling thread consuming ``duty`` cores."""
        if duty < 0:
            raise ValueError("duty must be >= 0")
        self.polling_load += duty

    def remove_polling_load(self, duty: float) -> None:
        self.polling_load = max(0.0, self.polling_load - duty)

    def slowdown(self, threads: int) -> float:
        """Oversubscription factor for a computation using ``threads``."""
        avail = max(self.available, 1)
        demand = threads + self.polling_load
        return max(1.0, demand / avail)

    def compute(self, seconds: float, threads: int = 1):
        """Generator: occupy ``threads`` cores for ``seconds`` of work."""
        if seconds < 0:
            raise ValueError("negative compute time")
        wall = seconds * self.slowdown(threads)
        self.busy_seconds += seconds * threads
        yield self.env.timeout(wall)
        return wall


class Node:
    """One node: an index, a :class:`CpuSet` and one or more NIC rails."""

    __slots__ = (
        "env", "index", "spec", "cpu", "_rng", "nics", "_nic_spec",
        "fabric", "crashed", "_loopback_free",
    )

    def __init__(self, env: Environment, index: int, spec, fabric, seed: int):
        from .nic import Nic  # local import to avoid cycle

        self.env = env
        self.index = index
        self.spec = spec
        self.cpu = CpuSet(env, spec.cores)
        self._rng = np.random.default_rng(seed)
        self.nics: List[Nic] = []
        self._nic_spec = None  # filled by Cluster
        self.fabric = fabric
        #: fail-stop flag set by a :class:`~repro.netsim.faults.NodeCrash`:
        #: every rail is dead and even the ordered (control/fallback) lane
        #: drops traffic to and from this node.
        self.crashed = False
        #: busy-until horizon of the intra-node loopback memcpy path
        #: (shared across rails: loopback bypasses the NIC ports).
        self._loopback_free = 0.0

    def _attach_nics(self, nic_spec, count: int, *, slab=None) -> None:
        """Create ``count`` rails.  When ``slab`` (a cluster-shared
        :class:`~repro.netsim.slab.NicSlab`) is given, each NIC gets one
        slot in it; otherwise each NIC carries a private slab.  NIC RNGs
        derive from this node's own stream, so the cluster-level
        materialization order never changes the draws."""
        from .nic import Nic

        self._nic_spec = nic_spec
        for i in range(count):
            rng = np.random.default_rng(self._rng.integers(0, 2**63 - 1))
            slot = slab.alloc() if slab is not None else None
            self.nics.append(
                Nic(self.env, self, i, nic_spec, self.fabric, rng,
                    slab=slab, slot=slot)
            )

    def nic(self, rail: int = 0):
        return self.nics[rail % len(self.nics)]

    @property
    def n_rails(self) -> int:
        return len(self.nics)

    def __repr__(self) -> str:
        return f"<Node {self.index} rails={len(self.nics)} cores={self.spec.cores}>"

"""Job/rank runtime: maps MPI-style ranks onto simulated nodes.

A :class:`Job` places ``ranks_per_node`` ranks on each node of a
:class:`~repro.netsim.Cluster` (block placement, like typical MPI
launchers).  Rank programs are generator functions ``fn(ctx, ...)``
receiving a :class:`RankContext`; :func:`run_job` spawns one simulated
process per rank and returns their values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from .netsim import Cluster, Nic, Node
from .sim import Environment, Process

__all__ = ["Job", "RankContext", "run_job"]


class Job:
    """A parallel job: ``n_ranks`` ranks block-placed over the cluster."""

    def __init__(self, cluster: Cluster, ranks_per_node: int = 1, n_ranks: Optional[int] = None):
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        self.cluster = cluster
        self.ranks_per_node = ranks_per_node
        max_ranks = cluster.n_nodes * ranks_per_node
        self.n_ranks = max_ranks if n_ranks is None else n_ranks
        if not 1 <= self.n_ranks <= max_ranks:
            raise ValueError(
                f"n_ranks={self.n_ranks} out of range 1..{max_ranks}"
            )
        #: rank -> node-index placement overrides (replication failover:
        #: a promoted rank adopts its mirror's node).  Empty on the hot
        #: path of every unreplicated run.
        self._node_override: dict = {}

    @property
    def env(self) -> Environment:
        return self.cluster.env

    def node_of(self, rank: int) -> Node:
        self._check(rank)
        if self._node_override:
            override = self._node_override.get(rank)
            if override is not None:
                return self.cluster.node(override)
        return self.cluster.node(rank // self.ranks_per_node)

    def reassign_node(self, rank: int, node_index: int) -> None:
        """Re-point ``rank`` onto another node (replication failover).

        Every placement-derived decision — NIC selection, signal-table
        node indices, fallback-lane liveness — re-resolves through
        :meth:`node_of` / :meth:`nic_of` at use time, so one override
        here transparently re-targets all future traffic of ``rank``.
        """
        self._check(rank)
        if not 0 <= node_index < self.cluster.n_nodes:
            raise ValueError(f"node {node_index} out of range")
        self._node_override[rank] = node_index

    def local_index(self, rank: int) -> int:
        """Index of ``rank`` among the ranks of its node."""
        self._check(rank)
        return rank % self.ranks_per_node

    def nic_of(self, rank: int, rail: int = 0) -> Nic:
        """NIC used by ``rank`` for ``rail``.

        With one rank per node, rail *r* maps to NIC *r* (multi-rail
        striping).  With several ranks per node, each rank's default rail
        is spread across the node's NICs so co-located ranks use
        different rails (the Figure 5 setup: 2 processes, 2 NICs).
        """
        node = self.node_of(rank)
        base = self.local_index(rank) % node.n_rails
        return node.nic((base + rail) % node.n_rails)

    def co_located(self, a: int, b: int) -> bool:
        return self.node_of(a) is self.node_of(b)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range 0..{self.n_ranks - 1}")

    def __repr__(self) -> str:
        return f"<Job ranks={self.n_ranks} ppn={self.ranks_per_node}>"


@dataclass
class RankContext:
    """Everything a rank program needs: identity plus shared services.

    ``services`` is a per-job dict where layers register themselves
    (``'mpi'`` → the simulated MPI world, ``'unr'`` → per-rank UNR
    endpoints, …).
    """

    job: Job
    rank: int
    services: dict

    @property
    def env(self) -> Environment:
        return self.job.env

    @property
    def n_ranks(self) -> int:
        return self.job.n_ranks

    @property
    def node(self) -> Node:
        return self.job.node_of(self.rank)

    def compute(self, seconds: float, threads: int = 1):
        """Charge ``seconds`` of computation to this rank's node."""
        return self.node.cpu.compute(seconds, threads=threads)


def run_job(
    job: Job,
    fn: Callable[..., Any],
    *args: Any,
    services: Optional[dict] = None,
    until: Optional[float] = None,
    ranks: Optional[Sequence[int]] = None,
) -> List[Any]:
    """Run ``fn(ctx, *args)`` as a generator on every rank; return values.

    Raises if any rank fails or if the job does not complete.
    """
    env = job.env
    shared = services if services is not None else {}
    procs: List[Process] = []
    rank_list = list(ranks) if ranks is not None else list(range(job.n_ranks))
    for rank in rank_list:
        ctx = RankContext(job=job, rank=rank, services=shared)
        procs.append(env.process(fn(ctx, *args), name=f"rank{rank}"))
    env.run(until=until)
    results = []
    for proc in procs:
        if not proc.triggered:
            raise RuntimeError(f"{proc.name} did not finish (deadlock?) at t={env.now}")
        if not proc.ok:
            raise proc.value
        results.append(proc.value)
    return results

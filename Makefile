# Test split: tier-1 stays fast, soak tests run on demand.
#
#   make test-fast   - everything except tests marked `slow` (the default
#                      pytest configuration, what CI gates on)
#   make test-all    - the full suite including the fault/stress soaks
#   make test-slow   - only the slow soaks
#   make demo-faults - the fault-injection acceptance demo

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-fast test-all test-slow demo-faults

test: test-fast

test-fast:
	$(PYTEST) -q -m "not slow"

test-all:
	$(PYTEST) -q -m "slow or not slow"

test-slow:
	$(PYTEST) -q -m slow

demo-faults:
	PYTHONPATH=src $(PYTHON) -m repro faults

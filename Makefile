# Test split: tier-1 stays fast, soak tests run on demand.
#
#   make test-fast   - everything except tests marked `slow` (the default
#                      pytest configuration, what CI gates on)
#   make test-all    - the full suite including the fault/stress soaks
#   make test-slow   - only the slow soaks
#   make test-chaos  - fault-domain resilience soak (degradation + the
#                      replication warm-failover leg) + BENCH_resilience.json
#   make demo-faults - the fault-injection acceptance demo
#   make trace       - observed trace demo: Perfetto JSON + bench record
#   make bench-engine - unified-engine datapath micro-benchmark (gated)
#   make bench-scaling - host cost of the paper's full 1728-node
#                      envelope: BENCH_scaling.json, budget gated
#   make profile     - unrprof host-time profile: BENCH_profile.json +
#                      flamegraph stacks, overhead gated at 10%
#   make bench-report - trend table + regression gates over the
#                      BENCH_*.json artifacts present in the repo root
#   make test-diff   - differential suite: coalesced datapath vs
#                      uncoalesced reference + golden fingerprints
#   make lint        - unrlint determinism rules (+ ruff when installed)
#   make verify      - unrverify: happens-before trace verifier over the
#                      golden + mutation corpora + static protocol pass
#   make typecheck   - mypy strict-lite gate (skipped when not installed)
#   make check       - lint + typecheck + unrverify + the UnrSanitizer
#                      acceptance run (selfcheck demo + violation battery)

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest
REPRO   = PYTHONPATH=src $(PYTHON) -m repro

.PHONY: test test-fast test-all test-slow test-chaos test-diff demo-faults trace bench-engine bench-scaling profile bench-report lint verify typecheck check

test: test-fast

test-fast:
	$(PYTEST) -q -m "not slow"

test-all:
	$(PYTEST) -q -m "slow or not slow"

test-slow:
	$(PYTEST) -q -m slow

# The chaos soak: node-kill schedules on all four Table III platforms,
# then the CLI run that writes the BENCH_resilience.json record.
test-chaos:
	$(PYTEST) -q -m chaos
	$(REPRO) chaos --out BENCH_resilience.json
	$(REPRO) bench-report BENCH_resilience.json \
		--max-failover-ttr-us 500 --max-replication-overhead 1.5

demo-faults:
	PYTHONPATH=src $(PYTHON) -m repro faults

trace:
	$(REPRO) trace stream --perfetto trace_obs.json --bench BENCH_obs.json

# The 12-events/put ceiling is the coalesced datapath cost (10.50, see
# tests/bench/fixtures/BENCH_engine.after.json) plus slack for one extra
# bookkeeping event; raising it needs a justification.  The throughput
# floor pins ops/simulated-second, which is set by the modelled platform
# physics — a drop means the datapath added simulated time per op.
bench-engine:
	$(REPRO) engine-bench --out BENCH_engine.json \
		--max-events-per-put 12 --min-ops-per-sim-sec 270000

# The full Figure 7 ladder up to the 1728-node machine, with a fixed
# small halo workload: flat wall/RSS curves prove the lazy netsim pays
# O(active-set), not O(nodes).  Each point must finish inside 10 s —
# generous vs the ~30 ms measured, so only O(nodes) regressions trip it.
bench-scaling:
	$(REPRO) scaling-bench --out BENCH_scaling.json --max-point-seconds 10

# Host-time attribution of the latency workload (BENCH_profile.json +
# collapsed stacks), then the profiler-tax gate on the engine
# micro-benchmark: profiled wall time may exceed observed by <=10%.
profile:
	$(REPRO) profile latency --sample-every 1 \
		--output BENCH_profile.json --flame profile_flame.txt \
		--overhead-repeats 15 --max-overhead-pct 10

# Trend + regression gates over whatever bench artifacts exist locally
# (each of the targets above drops one in the repo root).  CI runs the
# same command with the prior run's downloaded artifacts prepended.
bench-report:
	@files="$$(ls BENCH_*.json 2>/dev/null)"; \
	if [ -n "$$files" ]; then \
		$(REPRO) bench-report $$files \
			--max-events-per-put 12 --min-ops-per-sim-sec 270000; \
	else \
		echo "no BENCH_*.json artifacts; run make trace/bench-engine/profile first"; \
	fi

# Differential mode: coalesced/zero-copy datapath vs the uncoalesced
# reference — identical wire fingerprints, token streams, clean
# sanitizer.  Mismatches drop Perfetto traces into diff-artifacts/.
test-diff:
	$(PYTEST) -q tests/core/test_differential.py tests/core/test_fingerprints.py

# ruff/mypy are optional locally (the container may not ship them); the
# unrlint and sanitizer gates always run.  CI installs the full set.
lint:
	$(REPRO) lint src/repro
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi

verify:
	$(REPRO) verify

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (CI runs it)"; \
	fi

check: lint typecheck verify
	$(REPRO) check

#!/usr/bin/env python3
"""Multi-NIC aggregation (MMAS striping) on a dual-rail TH-XY node pair.

One logical message is striped over both NICs; the sub-message addends
``a = -1 + ((K-1) << (N+1))`` / ``a = (-1) << (N+1)`` make the single
receive signal fire exactly when every fragment of every message has
landed — no matter the arrival order under adaptive routing.

Prints a transfer-time comparison (1 rail vs 2 rails) and the Figure
5(a) throughput-improvement sweep.

Run:  python examples/multi_nic_aggregation.py
"""

import numpy as np

from repro.bench import aggregation_sweep, format_size
from repro.core import Unr
from repro.platforms import make_job
from repro.runtime import run_job

SIZE = 4 << 20  # 4 MiB


def one_transfer(max_rails: int) -> float:
    job = make_job("th-xy", n_nodes=2)
    unr = Unr(job, "glex", stripe_threshold=64 * 1024, max_stripe_rails=max_rails)
    t = {}

    def program(ctx):
        ep = unr.endpoint(ctx.rank)
        peer = 1 - ctx.rank
        buf = (np.arange(SIZE) % 251).astype(np.uint8) if ctx.rank == 0 else np.zeros(SIZE, np.uint8)
        mr = ep.mem_reg(buf)
        sig = ep.sig_init(1)
        blk = ep.blk_init(mr, 0, SIZE, signal=sig)
        rmt = yield from ep.exchange_blk(peer, blk)
        t0 = ctx.env.now
        if ctx.rank == 0:
            ep.put(blk, rmt, local_signal=None)
            yield ctx.env.timeout(0)
        else:
            yield from ep.sig_wait(sig)
            t["transfer"] = ctx.env.now - t0
            assert (buf == (np.arange(SIZE) % 251).astype(np.uint8)).all()

    run_job(job, program)
    return t["transfer"], unr.stats["fragments"]


def main() -> None:
    t1, frags1 = one_transfer(max_rails=1)
    t2, frags2 = one_transfer(max_rails=2)
    print(f"{format_size(SIZE)} notified PUT on TH-XY (2x200 Gbps rails):")
    print(f"  1 rail : {t1 * 1e6:8.1f} us  ({frags1} fragment)")
    print(f"  2 rails: {t2 * 1e6:8.1f} us  ({frags2} fragments, MMAS-aggregated)")
    print(f"  speedup: {t1 / t2:.2f}x\n")

    print("Figure 5(a) sweep — ping-pong with computation, 2 procs x 2 NICs:")
    rows = aggregation_sweep("th-xy", sizes=(32768, 262144, 1048576, 4194304), iters=12)
    for size, imp in zip(rows["sizes"], rows["improvement"]):
        bar = "#" * int(imp * 100)
        print(f"  {format_size(size):>6}: {imp * 100:5.1f}% {bar}")
    print("  (theoretical bound from the paper: +33%)")


if __name__ == "__main__":
    main()

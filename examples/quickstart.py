#!/usr/bin/env python3
"""Quickstart: the paper's Code 2 — two-sided send/recv turned into a
notified one-sided PUT.

Two ranks on a simulated InfiniBand cluster.  The receiver registers
its buffer, binds a signal to the receive block, ships the transportable
BLK handle to the sender, and from then on every iteration is a single
UNR_Put: the receiver's signal fires when the data is fully delivered —
no tags, no matching, no window synchronization.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Unr
from repro.platforms import make_job
from repro.runtime import run_job

SIZE = 64 * 1024
ITERS = 5


def main() -> None:
    job = make_job("hpc-ib", n_nodes=2)
    unr = Unr(job, "verbs")  # Level-2 Notifiable RMA Primitives
    print(f"UNR on {job.cluster.spec.name}: channel={unr.channel.name}, "
          f"support level {unr.level}, N={unr.n_bits}")

    def sender(ctx):
        ep = unr.endpoint(ctx.rank)
        send_buf = np.zeros(SIZE, dtype=np.uint8)
        mr = ep.mem_reg(send_buf)                      # UNR_Mem_Reg
        send_sig = ep.sig_init(1)                      # UNR_Sig_Init(1)
        send_blk = ep.blk_init(mr, 0, SIZE, signal=send_sig)
        rmt_blk = yield from ep.recv_ctl(1, tag="addr")  # get receive address
        for it in range(ITERS):
            send_buf[:] = it + 1
            ep.put(send_blk, rmt_blk)                  # UNR_Put
            yield from ep.sig_wait(send_sig)           # buffer reusable
            ep.sig_reset(send_sig)
            # Pre-synchronization for the next iteration rides the
            # receiver's acknowledgement (paper §V-A).
            yield from ep.recv_ctl(1, tag="ready")
        print(f"[sender]   done at t={ctx.env.now * 1e6:.2f} us")

    def receiver(ctx):
        ep = unr.endpoint(ctx.rank)
        recv_buf = np.zeros(SIZE, dtype=np.uint8)
        mr = ep.mem_reg(recv_buf)
        recv_sig = ep.sig_init(1)
        recv_blk = ep.blk_init(mr, 0, SIZE, signal=recv_sig)
        yield from ep.send_ctl(0, recv_blk, tag="addr")  # publish my BLK
        for it in range(ITERS):
            yield from ep.sig_wait(recv_sig)           # data is complete
            assert (recv_buf == it + 1).all()
            print(f"[receiver] iteration {it}: {SIZE} bytes of "
                  f"{recv_buf[0]} at t={ctx.env.now * 1e6:.2f} us")
            ep.sig_reset(recv_sig)                     # buffer ready again
            yield from ep.send_ctl(0, "go", tag="ready")

    def program(ctx):
        if ctx.rank == 0:
            yield from sender(ctx)
        else:
            yield from receiver(ctx)

    run_job(job, program)
    print(f"stats: {dict(unr.stats)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Irregular spike broadcast — the paper's future-work workload (§VIII).

A toy spiking-neural-network simulation: each rank owns a population of
neurons; every time step an *irregular, data-dependent* subset spikes,
and each spike must reach the (few) ranks whose neurons it synapses
onto.  Classic two-sided MPI needs either all-to-all metadata exchanges
or receiver polling; with UNR each rank pre-publishes one spike-inbox
BLK per possible source, and spikes are delivered as notified PUTs —
the per-source MMAS signals tell the receiver exactly *whose* spikes
have arrived, with zero synchronization.

The time-step barrier uses the UNR-based collectives library
(`repro.collectives`), the acceleration layer the paper suggests
building on top of UNR.

Run:  python examples/spike_broadcast.py
"""

import numpy as np

from repro.collectives import UnrCollectives
from repro.core import Unr
from repro.platforms import make_job
from repro.runtime import run_job

N_RANKS = 6
NEURONS_PER_RANK = 64
STEPS = 5
MAX_SPIKES = 16  # inbox capacity per (source, step-parity)
RECORD = 8  # bytes per spike record


def main() -> None:
    job = make_job("th-xy", n_nodes=N_RANKS)
    unr = Unr(job, "glex")
    rng_global = np.random.default_rng(7)
    # Static synapse topology: each rank projects to 2 random targets.
    targets = {
        r: sorted(int(v) for v in rng_global.choice([x for x in range(N_RANKS) if x != r], 2, replace=False))
        for r in range(N_RANKS)
    }
    print("synapse topology:", {r: t for r, t in targets.items()})
    totals = {}

    def program(ctx):
        me = ctx.rank
        ep = unr.endpoint(me)
        coll = UnrCollectives(unr, list(range(N_RANKS)), me, chunk_bytes=8)
        yield from coll.setup()
        rng = np.random.default_rng(100 + me)

        # Spike inboxes: one slot row per possible source, double-buffered
        # by step parity; a per-(source,parity) signal counts one PUT.
        slot = MAX_SPIKES * RECORD
        inbox = np.zeros(N_RANKS * 2 * slot, dtype=np.uint8)
        mr = ep.mem_reg(inbox)
        sigs = [[ep.sig_init(1) for _p in range(2)] for _s in range(N_RANKS)]
        my_blks = [
            [ep.blk_init(mr, (s * 2 + p) * slot, slot, signal=sigs[s][p]) for p in range(2)]
            for s in range(N_RANKS)
        ]
        # Publish my inbox rows to the ranks that project onto me.
        sources = [s for s in range(N_RANKS) if me in targets[s]]
        for s in sources:
            yield from ep.send_ctl(s, my_blks[s], tag=("inbox", me))
        out_blks = {}
        for t in targets[me]:
            out_blks[t] = yield from ep.recv_ctl(t, tag=("inbox", t))

        send_buf = np.zeros(slot, dtype=np.uint8)
        send_mr = ep.mem_reg(send_buf)
        received = 0
        sent = 0

        for step in range(STEPS):
            parity = step % 2
            # --- compute: decide who spikes (irregular!) -----------------
            n_spikes = int(rng.integers(0, MAX_SPIKES // 2))
            ids = rng.choice(NEURONS_PER_RANK, n_spikes, replace=False)
            yield from ctx.compute(2e-6 + 1e-7 * n_spikes)
            # --- broadcast my spikes to my synaptic targets --------------
            send_buf[:] = 0
            send_buf[0] = n_spikes
            for i, nid in enumerate(sorted(ids)):
                send_buf[RECORD + i * RECORD] = nid
            src = ep.blk_init(send_mr, 0, slot)
            for t in targets[me]:
                ep.put(src, out_blks[t][parity])
                sent += n_spikes
            # --- consume spikes from each source as they arrive ----------
            for s in sources:
                yield from ep.sig_wait(sigs[s][parity])
                k = int(inbox[(s * 2 + parity) * slot])
                received += k
                ep.sig_reset(sigs[s][parity])
            # Step barrier via the UNR collective library.
            yield from coll.barrier()
        totals[me] = (sent, received)

    run_job(job, program)
    total_sent = sum(s for s, _ in totals.values())
    total_recv = sum(r for _, r in totals.values())
    print(f"{STEPS} steps on {N_RANKS} ranks: "
          f"{total_sent} spike deliveries sent, {total_recv} consumed")
    assert total_sent == total_recv
    print("all spikes accounted for; zero synchronization beyond the "
          "step barrier — UNR stats:", dict(unr.stats))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""PowerLLEL mini-app: MPI baseline vs UNR, with real numerics.

Runs the incompressible-flow pressure-Poisson pipeline (RK2 velocity
update + FFT/PDD Poisson solve + projection) on a 2x2 pencil grid over
4 simulated TH-2A nodes, in both backends, and checks:

* the two backends produce bit-identical fields;
* the discrete projection drives the velocity divergence to machine
  zero;
* the UNR backend's sync-free pipeline is faster.

Run:  python examples/powerllel_demo.py
"""

import numpy as np

from repro.platforms import make_job
from repro.powerllel import (
    PowerLLELConfig,
    SerialReference,
    gather_fields,
    run_powerllel,
)

CFG = PowerLLELConfig(
    nx=32, ny=24, nz=32, py=2, pz=2, steps=3,
    lengths=(1.0, 1.0, 8.0), pipeline_slabs=2,
)


def main() -> None:
    print(f"PowerLLEL {CFG.nx}x{CFG.ny}x{CFG.nz} grid, "
          f"{CFG.py}x{CFG.pz} pencil decomposition, {CFG.steps} RK2 steps\n")

    results = {}
    for backend in ("mpi", "unr"):
        job = make_job("th-2a", n_nodes=CFG.n_ranks)
        res = run_powerllel(job, CFG, backend=backend)
        results[backend] = res
        p = res["phases"]
        print(f"[{backend:3s}] simulated time {res['time'] * 1e3:7.3f} ms   "
              f"vel={p['vel_update'] * 1e3:6.3f}  ppe={p['ppe'] * 1e3:6.3f}  "
              f"other={p['other'] * 1e3:6.3f}   max|div u|={res['max_divergence']:.2e}")

    speedup = results["mpi"]["time"] / results["unr"]["time"]
    print(f"\nUNR speedup over the MPI baseline: {speedup:.2f}x")

    # Cross-validation: backends agree bitwise; both match the serial
    # single-process reference.
    fa = gather_fields(results["mpi"]["ranks"], CFG)
    fb = gather_fields(results["unr"]["ranks"], CFG)
    for name in ("u", "v", "w", "p"):
        np.testing.assert_array_equal(fa[name], fb[name])
    ref = SerialReference(CFG.nx, CFG.ny, CFG.nz, lengths=CFG.lengths)
    for _ in range(CFG.steps):
        ref.step()
    err = np.abs(fa["u"] - ref.u[:, 1:-1, 1:-1]).max()
    print(f"backends agree bitwise; max |u - serial reference| = {err:.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Producer-consumer over notified RMA — the paper's motivating pattern.

A producer streams records into a ring of slots in the consumer's
memory.  With classic MPI-RMA the consumer cannot learn when *each*
record lands without a synchronization per record (the overhead the
paper's §II calls out); with UNR every slot carries an MMAS signal, so
the consumer processes records the moment they arrive, out of order if
the network reorders them.

Also demonstrates the bug-avoiding checks: the consumer deliberately
arms one signal too late and UNR's ``sig_reset`` reports the
synchronization error.

Run:  python examples/producer_consumer.py
"""

import warnings

import numpy as np

from repro.core import Unr, UnrSyncWarning
from repro.platforms import make_job
from repro.runtime import run_job

SLOTS = 4
RECORDS = 12
RECORD_BYTES = 32 * 1024


def main() -> None:
    job = make_job("th-xy", n_nodes=2)
    unr = Unr(job, "glex")
    print(f"channel=glex (TH Express), level {unr.level}: "
          f"{SLOTS}-slot ring, {RECORDS} records of {RECORD_BYTES} B")

    def producer(ctx):
        ep = unr.endpoint(ctx.rank)
        buf = np.zeros(RECORD_BYTES, dtype=np.uint8)
        mr = ep.mem_reg(buf)
        blk = ep.blk_init(mr, 0, RECORD_BYTES)
        slots = yield from ep.recv_ctl(1, tag="ring")  # consumer's BLKs
        for rec in range(RECORDS):
            buf[:] = rec + 1
            ep.put(blk, slots[rec % SLOTS])
            # Flow control: wait for the slot's credit before reusing it.
            if rec >= SLOTS - 1:
                yield from ep.recv_ctl(1, tag=("credit", (rec - SLOTS + 1) % SLOTS))
        print(f"[producer] streamed {RECORDS} records by t={ctx.env.now*1e6:.1f} us")

    def consumer(ctx):
        ep = unr.endpoint(ctx.rank)
        ring = np.zeros(SLOTS * RECORD_BYTES, dtype=np.uint8)
        mr = ep.mem_reg(ring)
        sigs = [ep.sig_init(1) for _ in range(SLOTS)]
        blks = [
            ep.blk_init(mr, s * RECORD_BYTES, RECORD_BYTES, signal=sigs[s])
            for s in range(SLOTS)
        ]
        yield from ep.send_ctl(0, blks, tag="ring")
        consumed = []
        for rec in range(RECORDS):
            s = rec % SLOTS
            yield from ep.sig_wait(sigs[s])     # this record is complete
            value = int(ring[s * RECORD_BYTES])
            consumed.append(value)
            ep.sig_reset(sigs[s])               # slot ready for reuse
            yield from ep.send_ctl(0, "ok", tag=("credit", s))
        print(f"[consumer] consumed {consumed} by t={ctx.env.now*1e6:.1f} us")
        assert consumed == list(range(1, RECORDS + 1))

    def program(ctx):
        if ctx.rank == 0:
            yield from producer(ctx)
        else:
            yield from consumer(ctx)

    run_job(job, program)

    # ---- bug-avoiding interface demo -----------------------------------
    print("\nbug-avoidance demo: resetting a signal whose buffer already "
          "received data raises a synchronization warning:")
    job2 = make_job("th-xy", n_nodes=2)
    unr2 = Unr(job2, "glex")

    def buggy(ctx):
        ep = unr2.endpoint(ctx.rank)
        if ctx.rank == 0:
            buf = np.ones(64, dtype=np.uint8)
            mr = ep.mem_reg(buf)
            blk = ep.blk_init(mr, 0, 64)
            rmt = yield from ep.recv_ctl(1, tag="b")
            ep.put(blk, rmt)
            yield ctx.env.timeout(1e-5)
            ep.put(blk, rmt)          # fires before the receiver re-armed
            yield ctx.env.timeout(1e-4)
        else:
            buf = np.zeros(64, dtype=np.uint8)
            mr = ep.mem_reg(buf)
            sig = ep.sig_init(1)
            blk = ep.blk_init(mr, 0, 64, signal=sig)
            yield from ep.send_ctl(0, blk, tag="b")
            yield from ep.sig_wait(sig)
            # BUG: the producer already sent the next message, but we
            # pretend the buffer is only ready now:
            yield ctx.env.timeout(5e-5)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                ep.sig_reset(sig)
            for w in caught:
                if isinstance(w.message, UnrSyncWarning):
                    print(f"  caught: {w.message}")

    run_job(job2, buggy)


if __name__ == "__main__":
    main()
